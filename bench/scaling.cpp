// Beyond the paper — scalability: per-slot decision time of the full
// BDMA(3) controller as the system grows past the evaluated I = 80..120
// (devices up to 400, servers up to 64). The per-slot decision must stay
// interactive for the online setting to be credible.
//
// Runs through sim::run_sweep over a devices axis; the cluster/server
// counts grow with the device count via the spec's configure hook
// (I >= 200 doubles the clusters, I >= 400 doubles the servers per
// cluster). The "run s" column is the summed decision time of the horizon;
// divide by --horizon for the per-slot cost. CGBA solution quality versus
// the certified lower bound is tracked separately by fig4_p2a_objective.
//
// A second, optional dimension (--stream-out) scales the HORIZON instead
// of the system: 1k / 10k / 100k slots at I = 50, streaming
// (SweepSpec::stream, O(1) memory) vs materialized (O(horizon) states
// up front), recording peak RSS and decision throughput per cell into an
// eotora-sweep-v1 JSON artifact (committed baseline: BENCH_streaming.json).
// Streaming cells run first so the process RSS high-water mark is not
// already polluted by the materialized horizons.
//
// A third dimension (--metro-out) swaps in the metro-district scenario
// (ScenarioConfig::metro_districts) and compares the sharded P2-A drivers
// (core/sharded) against the global solve on identical instances, devices
// 10^3 -> 10^5 with the district grid growing alongside (committed
// baseline: BENCH_shards.json). The two arms return bit-identical
// decisions; the study isolates the decision-time win of solving hundreds
// of independent components instead of one metro-wide game.
//
//   --devices-max=N --seed=S --horizon=T --threads=K --out=path.json
//   --stream-out=path.json [--slots-max=N]
//   --metro-out=path.json [--metro-devices-max=N]
#include <algorithm>
#include <iostream>

#include "eotora/eotora.h"

namespace {

using namespace eotora;

// The horizon-scaling study: one single-cell sweep per (mode, horizon),
// run sequentially so per-cell peak-RSS measurements don't overlap.
void run_streaming_study(const std::string& out_path, long slots_max,
                         std::uint64_t seed) {
  std::vector<std::size_t> horizons;
  for (const long h : {1000L, 10000L, 100000L}) {
    if (h <= slots_max) horizons.push_back(static_cast<std::size_t>(h));
  }
  if (horizons.empty()) {
    throw std::invalid_argument("--slots-max must be >= 1000");
  }

  std::cout << "\nHorizon-scaling study: BDMA(3), I = 50, streaming vs "
               "materialized\n\n";
  util::Json records = util::Json::array();
  double total_seconds = 0.0;
  for (const bool stream_mode : {true, false}) {
    for (const std::size_t horizon : horizons) {
      sim::SweepSpec spec;
      spec.name = "streaming_scaling";
      spec.base.devices = 50;
      spec.base.seed = seed;
      spec.horizon = horizon;
      spec.window = std::min<std::size_t>(48, horizon);
      spec.policies = {"dpp-bdma"};
      spec.params.v = 100.0;
      spec.params.bdma_iterations = 3;
      spec.stream = stream_mode;

      const bool rss_reset = util::reset_peak_rss();
      const auto result = sim::run_sweep(spec, 1);
      const std::uint64_t peak = util::peak_rss_bytes();
      const sim::SweepCell& cell = result.cells.front();

      util::Json record = util::Json::object();
      record["horizon"] = horizon;
      record["stream"] = stream_mode;
      record["devices"] = std::size_t{50};
      record["policy"] = cell.policy;
      record["tail_latency"] = cell.tail.latency;
      record["avg_latency"] = cell.avg_latency;
      record["avg_cost"] = cell.avg_cost;
      record["avg_backlog"] = cell.avg_backlog;
      // Wall-clock and memory fields: NOT deterministic across machines.
      record["decision_seconds"] = cell.decision_seconds;
      record["wall_seconds"] = cell.wall_seconds;
      record["slots_per_sec"] =
          static_cast<double>(horizon) / cell.decision_seconds;
      record["peak_rss_bytes"] = static_cast<double>(peak);
      // Whether the kernel honored the watermark reset; without it the
      // peak is the monotone process-lifetime high-water mark.
      record["rss_reset"] = rss_reset;
      records.push_back(std::move(record));
      total_seconds += result.wall_seconds;

      std::cout << "  " << (stream_mode ? "streaming   " : "materialized")
                << "  horizon=" << horizon << "  peak RSS "
                << peak / (1024 * 1024) << " MiB  "
                << static_cast<double>(horizon) / cell.decision_seconds
                << " slots/s\n";
    }
  }

  util::Json doc = util::Json::object();
  doc["schema"] = "eotora-sweep-v1";
  doc["commit"] = util::build_info().commit;
  doc["build_type"] = util::build_info().build_type;
  doc["name"] = "streaming_scaling";
  doc["horizon"] = horizons.back();
  doc["window"] = std::size_t{48};
  doc["seeds"] = std::size_t{1};
  util::Json axes = util::Json::array();
  {
    util::Json axis = util::Json::object();
    axis["name"] = "horizon";
    util::Json values = util::Json::array();
    for (const std::size_t h : horizons) values.push_back(h);
    axis["values"] = std::move(values);
    axes.push_back(std::move(axis));
  }
  {
    util::Json axis = util::Json::object();
    axis["name"] = "stream";
    util::Json values = util::Json::array();
    values.push_back(1.0);
    values.push_back(0.0);
    axis["values"] = std::move(values);
    axes.push_back(std::move(axis));
  }
  doc["axes"] = std::move(axes);
  util::Json policies = util::Json::array();
  policies.push_back("dpp-bdma");
  doc["policies"] = std::move(policies);
  doc["records"] = std::move(records);
  doc["wall_seconds"] = total_seconds;
  util::write_json_file(out_path, doc);
  std::cout << "\nwrote " << out_path << "\n";
}

// The metro study: sharded vs global P2-A on the metro-district scenario
// (sim::ScenarioConfig::metro_districts), devices 10^3 -> 10^5 with the
// district grid growing alongside. Every deterministic result field is
// bit-identical between the two arms (the sharded drivers' contract); the
// study measures what the decomposition buys in decision time when the WCG
// splits into hundreds of components.
void run_metro_study(const std::string& out_path, long devices_max,
                     std::uint64_t seed) {
  struct MetroPoint {
    std::size_t devices;
    std::size_t districts;
  };
  std::vector<MetroPoint> points;
  for (const MetroPoint p :
       {MetroPoint{1000, 16}, MetroPoint{10000, 64}, MetroPoint{100000, 256}}) {
    if (p.devices <= static_cast<std::size_t>(devices_max)) {
      points.push_back(p);
    }
  }
  if (points.empty()) {
    throw std::invalid_argument("--metro-devices-max must be >= 1000");
  }

  std::cout << "\nMetro study: BDMA(3) sharded vs global P2-A, "
            << points.front().devices << " -> " << points.back().devices
            << " devices\n\n";
  util::Json records = util::Json::array();
  double total_seconds = 0.0;
  for (const MetroPoint& point : points) {
    double global_decision_seconds = 0.0;
    for (const std::size_t workers : {std::size_t{0}, std::size_t{8}}) {
      sim::SweepSpec spec;
      spec.name = "metro_scaling";
      spec.base.seed = seed;
      spec.base.devices = point.devices;
      spec.base.metro_districts = point.districts;
      spec.base.stations_per_district = 2;
      spec.base.servers_per_cluster = 4;
      spec.horizon = 2;
      spec.window = 2;
      spec.policies = {"dpp-bdma"};
      spec.params.v = 100.0;
      spec.params.bdma_iterations = 3;
      spec.params.shard_workers = workers;
      spec.stream = true;  // O(devices) memory, not O(horizon)

      const auto result = sim::run_sweep(spec, 1);
      const sim::SweepCell& cell = result.cells.front();
      // The observed component count, from the p2a_solve stage's per-shard
      // telemetry (empty for the global arm).
      std::size_t observed_shards = 0;
      for (const auto& stage : cell.stages) {
        observed_shards = std::max(observed_shards, stage.shards.size());
      }

      util::Json record = util::Json::object();
      record["devices"] = point.devices;
      record["districts"] = point.districts;
      record["shard_workers"] = workers;
      record["observed_shards"] = observed_shards;
      record["policy"] = cell.policy;
      record["avg_latency"] = cell.avg_latency;
      record["avg_cost"] = cell.avg_cost;
      record["avg_backlog"] = cell.avg_backlog;
      record["counters"] = cell.counters.to_json();
      // Per-stage breakdown with the per-shard telemetry, mirroring
      // SweepResult::write_json — CI validates that the in-shard counter
      // fields of each "shards" array sum to the stage totals.
      util::Json stages_json = util::Json::array();
      for (const auto& stage : cell.stages) {
        util::Json stage_json = util::Json::object();
        stage_json["name"] = stage.name;
        stage_json["runs"] = stage.runs;
        stage_json["counters"] = stage.counters.to_json();
        if (!stage.shards.empty()) {
          util::Json shards_json = util::Json::array();
          for (const auto& shard : stage.shards) {
            shards_json.push_back(shard.to_json());
          }
          stage_json["shards"] = std::move(shards_json);
        }
        stage_json["seconds"] = stage.seconds;
        stages_json.push_back(std::move(stage_json));
      }
      record["stages"] = std::move(stages_json);
      // Wall-clock fields: NOT deterministic across machines.
      record["decision_seconds"] = cell.decision_seconds;
      record["wall_seconds"] = cell.wall_seconds;
      if (workers == 0) {
        global_decision_seconds = cell.decision_seconds;
      } else if (cell.decision_seconds > 0.0) {
        record["speedup_vs_global"] =
            global_decision_seconds / cell.decision_seconds;
      }
      records.push_back(std::move(record));
      total_seconds += result.wall_seconds;

      std::cout << "  devices=" << point.devices
                << "  districts=" << point.districts
                << (workers == 0 ? "  global " : "  sharded")
                << "  shards=" << observed_shards << "  decision "
                << cell.decision_seconds << " s";
      if (workers != 0 && cell.decision_seconds > 0.0) {
        std::cout << "  (" << global_decision_seconds / cell.decision_seconds
                  << "x vs global)";
      }
      std::cout << "\n";
    }
  }

  util::Json doc = util::Json::object();
  doc["schema"] = "eotora-sweep-v1";
  doc["commit"] = util::build_info().commit;
  doc["build_type"] = util::build_info().build_type;
  doc["name"] = "metro_scaling";
  doc["horizon"] = std::size_t{2};
  doc["window"] = std::size_t{2};
  doc["seeds"] = std::size_t{1};
  util::Json axes = util::Json::array();
  {
    util::Json axis = util::Json::object();
    axis["name"] = "devices";
    util::Json values = util::Json::array();
    for (const MetroPoint& p : points) values.push_back(p.devices);
    axis["values"] = std::move(values);
    axes.push_back(std::move(axis));
  }
  {
    util::Json axis = util::Json::object();
    axis["name"] = "shards";
    util::Json values = util::Json::array();
    values.push_back(0.0);
    values.push_back(8.0);
    axis["values"] = std::move(values);
    axes.push_back(std::move(axis));
  }
  doc["axes"] = std::move(axes);
  util::Json policies = util::Json::array();
  policies.push_back("dpp-bdma");
  doc["policies"] = std::move(policies);
  doc["records"] = std::move(records);
  doc["wall_seconds"] = total_seconds;
  util::write_json_file(out_path, doc);
  std::cout << "\nwrote " << out_path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eotora;
  try {
    const util::Args args(argc, argv,
                          {"devices-max", "seed", "horizon", "threads", "out",
                           "stream-out", "slots-max", "metro-out",
                           "metro-devices-max"});
    const auto devices_max = args.get_int("devices-max", 400);

    sim::SweepSpec spec;
    spec.name = "scaling";
    spec.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 4000));
    spec.horizon = static_cast<std::size_t>(args.get_int("horizon", 6));
    spec.window = spec.horizon;  // averages over the full (short) run
    sim::SweepAxis devices{"devices", {}};
    for (const double i : {50.0, 100.0, 200.0, 400.0}) {
      if (i <= static_cast<double>(devices_max)) devices.values.push_back(i);
    }
    spec.axes = {devices};
    spec.policies = {"dpp-bdma"};
    spec.params.v = 100.0;
    spec.params.bdma_iterations = 3;
    // Topology grows with the device count (the same shape the seed bench
    // hard-coded case by case), and each size gets its own scenario seed.
    spec.configure = [](const sim::AxisAssignment& assignment,
                        sim::ScenarioConfig& config, sim::PolicyParams&) {
      const auto i = static_cast<std::size_t>(assignment.front().second);
      config.clusters = i >= 200 ? 4 : 2;
      config.servers_per_cluster = i >= 400 ? 16 : 8;
      config.mid_band_stations = 2 * config.clusters;
      config.seed += i;
    };

    std::cout << "Scaling study: BDMA(3) decision time vs system size ("
              << spec.horizon << "-slot runs)\n\n";
    const auto result =
        sim::run_sweep(spec, static_cast<std::size_t>(args.get_int("threads", 0)));
    result.table().print(std::cout);
    std::cout << "\nreading: the \"run s\" column divided by " << spec.horizon
              << " slots is the per-slot decision time; a full BDMA(3) slot "
                 "stays sub-second even at 4x the paper's scale (I = 400, "
                 "N = 64).\n";
    if (args.has("out")) {
      const std::string path = args.get("out", "");
      result.write_json(path);
      std::cout << "wrote " << path << "\n";
    }
    if (args.has("stream-out")) {
      run_streaming_study(args.get("stream-out", ""),
                          args.get_int("slots-max", 100000),
                          static_cast<std::uint64_t>(args.get_int("seed", 4000)));
    }
    if (args.has("metro-out")) {
      run_metro_study(args.get("metro-out", ""),
                      args.get_int("metro-devices-max", 100000),
                      static_cast<std::uint64_t>(args.get_int("seed", 4000)));
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
