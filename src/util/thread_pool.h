// A fixed-size worker pool shared by the experiment layer.
//
// The pool is deliberately work-stealing-free: parallel work is expressed as
// an index space [0, count) drained through one atomic counter, so the only
// scheduling state is which worker picked which index — never the order in
// which RESULTS are combined. Callers that store result i into slot i of a
// pre-sized vector and merge slots in index order therefore produce output
// that is bit-identical to a serial loop, regardless of thread count (this
// is the guarantee sim::replicate_parallel and sim::run_sweep rely on).
//
// Exceptions thrown by the body are captured; the first one (by completion
// order) is rethrown on the calling thread after every index finished or
// was abandoned.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace eotora::util {

class ThreadPool {
 public:
  // Spawns `threads` persistent workers. Requires threads >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const;

  // Runs body(i) for every i in [0, count), using at most `max_workers`
  // pool workers (clamped to the pool size and to count), and blocks until
  // all indices completed. The calling thread participates as a worker, so
  // max_workers == 1 degenerates to a plain serial loop with no handoff.
  // Requires max_workers >= 1. count == 0 is a no-op.
  void parallel_for_index(std::size_t count, std::size_t max_workers,
                          const std::function<void(std::size_t)>& body);

  // Convenience overload: use every pool worker.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& body);

  // The process-wide pool, sized to the hardware concurrency (at least 1).
  // Created on first use; lives until process exit.
  static ThreadPool& shared();

 private:
  struct Impl;
  // unique_ptr (with Impl complete in the .cpp) so Impl is released even
  // when the constructor throws, e.g. on the threads >= 1 precondition.
  std::unique_ptr<Impl> impl_;
};

}  // namespace eotora::util
