#include "core/wcg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/counters.h"
#include "util/check.h"

namespace eotora::core {

namespace {
// Resource index layout: [0, N) compute, [N, N+K) access, [N+K, N+2K) fronthaul.
std::size_t compute_index(std::size_t n) { return n; }
std::size_t access_index(std::size_t n_servers, std::size_t k) {
  return n_servers + k;
}
std::size_t fronthaul_index(std::size_t n_servers, std::size_t n_bs,
                            std::size_t k) {
  return n_servers + n_bs + k;
}
}  // namespace

WcgProblem::WcgProblem(const Instance& instance, const SlotState& state,
                       const Frequencies& frequencies) {
  rebuild(instance, state, frequencies);
}

void WcgProblem::rebuild(const Instance& instance, const SlotState& state,
                         const Frequencies& frequencies) {
  const auto& topo = instance.topology();
  num_servers_ = topo.num_servers();
  num_base_stations_ = topo.num_base_stations();
  const std::size_t devices = topo.num_devices();

  EOTORA_REQUIRE_MSG(state.task_cycles.size() == devices,
                     "task_cycles entries=" << state.task_cycles.size());
  EOTORA_REQUIRE_MSG(state.data_bits.size() == devices,
                     "data_bits entries=" << state.data_bits.size());
  EOTORA_REQUIRE_MSG(state.channel.size() == devices,
                     "channel rows=" << state.channel.size());
  for (std::size_t i = 0; i < devices; ++i) {
    EOTORA_REQUIRE(state.channel[i].size() == num_base_stations_);
    EOTORA_REQUIRE_MSG(state.task_cycles[i] > 0.0,
                       "device " << i << " f=" << state.task_cycles[i]);
    EOTORA_REQUIRE_MSG(state.data_bits[i] > 0.0,
                       "device " << i << " d=" << state.data_bits[i]);
  }

  weights_.assign(num_servers_ + 2 * num_base_stations_, 0.0);
  set_frequencies(instance, frequencies);
  // Slot-invariant station tables: reuse iff every raw bandwidth and
  // fronthaul spectral efficiency is bitwise unchanged — then the cached
  // reciprocals are trivially the exact bits a recompute would produce.
  bool reuse = station_access_bw_.size() == num_base_stations_;
  for (std::size_t k = 0; reuse && k < num_base_stations_; ++k) {
    const auto& bs = topo.base_station(topology::BaseStationId{k});
    reuse = station_access_bw_[k] == bs.access_bandwidth_hz &&
            station_fronthaul_bw_[k] == bs.fronthaul_bandwidth_hz &&
            fronthaul_se_[k] == bs.fronthaul_spectral_efficiency;
  }
  if (reuse) {
    ++counters::active().arena_precompute_reuses;
  } else {
    station_access_bw_.resize(num_base_stations_);
    station_fronthaul_bw_.resize(num_base_stations_);
    inv_access_bw_.resize(num_base_stations_);
    inv_fronthaul_bw_.resize(num_base_stations_);
    fronthaul_se_.resize(num_base_stations_);
    for (std::size_t k = 0; k < num_base_stations_; ++k) {
      const auto& bs = topo.base_station(topology::BaseStationId{k});
      station_access_bw_[k] = bs.access_bandwidth_hz;
      station_fronthaul_bw_[k] = bs.fronthaul_bandwidth_hz;
      inv_access_bw_[k] = 1.0 / bs.access_bandwidth_hz;
      inv_fronthaul_bw_[k] = 1.0 / bs.fronthaul_bandwidth_hz;
      fronthaul_se_[k] = bs.fronthaul_spectral_efficiency;
    }
    ++counters::active().arena_precomputes;
  }
  for (std::size_t k = 0; k < num_base_stations_; ++k) {
    weights_[access_index(num_servers_, k)] = inv_access_bw_[k];
    weights_[fronthaul_index(num_servers_, num_base_stations_, k)] =
        inv_fronthaul_bw_[k];
  }

  arena_.clear();
  offsets_.clear();
  offsets_.reserve(devices + 1);
  offsets_.push_back(0);
  const SuitabilityMatrix& sigma = instance.sigma();
  EOTORA_REQUIRE(sigma.size() == devices);
  task_cycles_row_.resize(num_servers_);
  sqrt_compute_row_.resize(num_servers_);
  for (std::size_t i = 0; i < devices; ++i) {
    // Batched sqrt(f_i / σ_{i,·}) over the full server row: a server that
    // appears under several covering base stations gets its chain evaluated
    // once instead of once per option, with the same operands and rounding
    // as the per-option chain it replaces. Entries for servers no option
    // reaches are never read.
    EOTORA_REQUIRE(sigma[i].size() == num_servers_);
    std::fill(task_cycles_row_.begin(), task_cycles_row_.end(),
              state.task_cycles[i]);
    kernels::dispatch().sqrt_div(task_cycles_row_.data(), sigma[i].data(),
                                 sqrt_compute_row_.data(), num_servers_);
    for (std::size_t k = 0; k < num_base_stations_; ++k) {
      const double h = state.channel[i][k];
      if (h <= 0.0) continue;  // not covered / unusable link
      const double p_access = std::sqrt(state.data_bits[i] / h);
      const double p_fronthaul =
          std::sqrt(state.data_bits[i] / fronthaul_se_[k]);
      for (topology::ServerId s :
           topo.reachable_servers(topology::BaseStationId{k})) {
        Option opt;
        opt.bs = k;
        opt.server = s.value;
        opt.r_compute = compute_index(s.value);
        opt.r_access = access_index(num_servers_, k);
        opt.r_fronthaul =
            fronthaul_index(num_servers_, num_base_stations_, k);
        opt.p_compute = sqrt_compute_row_[s.value];
        opt.p_access = p_access;
        opt.p_fronthaul = p_fronthaul;
        arena_.push_back(opt);
      }
    }
    EOTORA_REQUIRE_MSG(arena_.size() > offsets_.back(),
                       "device " << i
                                 << " has no feasible (base station, server) "
                                    "option at slot "
                                 << state.slot);
    offsets_.push_back(arena_.size());
  }

  device_of_.resize(arena_.size());
  for (std::size_t i = 0; i < devices; ++i) {
    for (std::size_t a = offsets_[i]; a < offsets_[i + 1]; ++a) {
      device_of_[a] = static_cast<std::uint32_t>(i);
    }
  }

  // Inverted index (CSR): count per resource, prefix-sum, fill using the
  // offsets themselves as cursors, then shift the offsets back down.
  const std::size_t resources = weights_.size();
  index_offsets_.assign(resources + 1, 0);
  for (const Option& opt : arena_) {
    ++index_offsets_[opt.r_compute + 1];
    ++index_offsets_[opt.r_access + 1];
    ++index_offsets_[opt.r_fronthaul + 1];
  }
  for (std::size_t r = 0; r < resources; ++r) {
    index_offsets_[r + 1] += index_offsets_[r];
  }
  index_entries_.resize(3 * arena_.size());
  for (std::size_t a = 0; a < arena_.size(); ++a) {
    const Option& opt = arena_[a];
    index_entries_[index_offsets_[opt.r_compute]++] =
        static_cast<std::uint32_t>(a);
    index_entries_[index_offsets_[opt.r_access]++] =
        static_cast<std::uint32_t>(a);
    index_entries_[index_offsets_[opt.r_fronthaul]++] =
        static_cast<std::uint32_t>(a);
  }
  // Each cursor now sits at the end of its bucket, i.e. the start of the
  // next one; shift back so index_offsets_[r] is the start of bucket r.
  for (std::size_t r = resources; r > 0; --r) {
    index_offsets_[r] = index_offsets_[r - 1];
  }
  index_offsets_[0] = 0;

  // The connectivity structure may have changed; components() re-checks the
  // signature (and reuses the decomposition when it matches) on next use.
  components_valid_ = false;
}

std::span<const Option> WcgProblem::options(std::size_t device) const {
  EOTORA_REQUIRE(device + 1 < offsets_.size());
  return {arena_.data() + offsets_[device],
          offsets_[device + 1] - offsets_[device]};
}

std::span<const std::uint32_t> WcgProblem::options_on_resource(
    std::size_t resource) const {
  EOTORA_REQUIRE(resource + 1 < index_offsets_.size());
  return {index_entries_.data() + index_offsets_[resource],
          index_offsets_[resource + 1] - index_offsets_[resource]};
}

double WcgProblem::weight(std::size_t resource) const {
  EOTORA_REQUIRE(resource < weights_.size());
  return weights_[resource];
}

void WcgProblem::set_frequencies(const Instance& instance,
                                 const Frequencies& frequencies) {
  EOTORA_REQUIRE_MSG(frequencies.size() == num_servers_,
                     "frequency entries=" << frequencies.size());
  EOTORA_REQUIRE_MSG(instance.frequencies_feasible(frequencies),
                     "frequencies outside [F^L, F^U]");
  const auto& topo = instance.topology();
  for (std::size_t n = 0; n < num_servers_; ++n) {
    const auto& server = topo.server(topology::ServerId{n});
    weights_[compute_index(n)] = 1.0 / server.capacity_hz(frequencies[n]);
  }
}

Profile WcgProblem::random_profile(util::Rng& rng) const {
  Profile z(num_devices(), 0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = rng.index(offsets_[i + 1] - offsets_[i]);
  }
  return z;
}

void WcgProblem::loads_into(const Profile& z, std::vector<double>& p) const {
  EOTORA_REQUIRE(z.size() == num_devices());
  p.assign(weights_.size(), 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EOTORA_REQUIRE(z[i] < offsets_[i + 1] - offsets_[i]);
    const Option& opt = arena_[offsets_[i] + z[i]];
    p[opt.r_compute] += opt.p_compute;
    p[opt.r_access] += opt.p_access;
    p[opt.r_fronthaul] += opt.p_fronthaul;
  }
}

double WcgProblem::total_cost(const Profile& z) const {
  std::vector<double> scratch;
  return total_cost(z, scratch);
}

double WcgProblem::total_cost(const Profile& z,
                              std::vector<double>& scratch) const {
  loads_into(z, scratch);
  return kernels::weighted_sumsq(weights_.data(), scratch.data(),
                                 scratch.size());
}

double WcgProblem::player_cost(const Profile& z, std::size_t device) const {
  std::vector<double> scratch;
  return player_cost(z, device, scratch);
}

double WcgProblem::player_cost(const Profile& z, std::size_t device,
                               std::vector<double>& scratch) const {
  EOTORA_REQUIRE(device < num_devices());
  loads_into(z, scratch);
  const Option& opt = arena_[offsets_[device] + z[device]];
  return weights_[opt.r_compute] * opt.p_compute * scratch[opt.r_compute] +
         weights_[opt.r_access] * opt.p_access * scratch[opt.r_access] +
         weights_[opt.r_fronthaul] * opt.p_fronthaul *
             scratch[opt.r_fronthaul];
}

double WcgProblem::potential(const Profile& z) const {
  std::vector<double> loads_scratch;
  std::vector<double> squares_scratch;
  return potential(z, loads_scratch, squares_scratch);
}

double WcgProblem::potential(const Profile& z,
                             std::vector<double>& loads_scratch,
                             std::vector<double>& squares_scratch) const {
  loads_into(z, loads_scratch);
  squares_scratch.assign(weights_.size(), 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    const Option& opt = arena_[offsets_[i] + z[i]];
    squares_scratch[opt.r_compute] += opt.p_compute * opt.p_compute;
    squares_scratch[opt.r_access] += opt.p_access * opt.p_access;
    squares_scratch[opt.r_fronthaul] += opt.p_fronthaul * opt.p_fronthaul;
  }
  double phi = 0.0;
  for (std::size_t r = 0; r < weights_.size(); ++r) {
    phi += 0.5 * weights_[r] *
           (loads_scratch[r] * loads_scratch[r] + squares_scratch[r]);
  }
  return phi;
}

Assignment WcgProblem::to_assignment(const Profile& z) const {
  EOTORA_REQUIRE(z.size() == num_devices());
  Assignment a;
  a.bs_of.resize(z.size());
  a.server_of.resize(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    EOTORA_REQUIRE(z[i] < offsets_[i + 1] - offsets_[i]);
    const Option& opt = arena_[offsets_[i] + z[i]];
    a.bs_of[i] = opt.bs;
    a.server_of[i] = opt.server;
  }
  return a;
}

Profile WcgProblem::to_profile(const Assignment& assignment) const {
  EOTORA_REQUIRE(assignment.bs_of.size() == num_devices());
  EOTORA_REQUIRE(assignment.server_of.size() == num_devices());
  Profile z(num_devices(), 0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    const std::span<const Option> opts = options(i);
    bool found = false;
    for (std::size_t o = 0; o < opts.size(); ++o) {
      if (opts[o].bs == assignment.bs_of[i] &&
          opts[o].server == assignment.server_of[i]) {
        z[i] = o;
        found = true;
        break;
      }
    }
    EOTORA_REQUIRE_MSG(found, "device " << i << " assignment (bs="
                                        << assignment.bs_of[i] << ", server="
                                        << assignment.server_of[i]
                                        << ") is not a feasible option");
  }
  return z;
}

double WcgProblem::singleton_lower_bound() const {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_devices(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const Option& opt : options(i)) {
      const double own =
          weights_[opt.r_compute] * opt.p_compute * opt.p_compute +
          weights_[opt.r_access] * opt.p_access * opt.p_access +
          weights_[opt.r_fronthaul] * opt.p_fronthaul * opt.p_fronthaul;
      best = std::min(best, own);
    }
    bound += best;
  }
  return bound;
}

const WcgComponents& WcgProblem::components() const {
  if (components_valid_) return components_;

  // Signature check: if the (bs, server) structure and the offset table are
  // unchanged since the last find, the decomposition is still valid —
  // per-slot state changes magnitudes, not which links exist.
  bool same = signature_valid_ && signature_offsets_ == offsets_ &&
              signature_options_.size() == arena_.size();
  if (same) {
    for (std::size_t a = 0; a < arena_.size(); ++a) {
      const std::uint64_t sig =
          (static_cast<std::uint64_t>(arena_[a].bs) << 32) |
          static_cast<std::uint64_t>(arena_[a].server);
      if (signature_options_[a] != sig) {
        same = false;
        break;
      }
    }
  }
  if (same) {
    ++counters::active().component_reuses;
    components_valid_ = true;
    return components_;
  }

  // Union-find over resources with path halving; every option unions its
  // three resources into the root of its device's first compute resource,
  // so all resources a device can ever touch end up in one set.
  const std::size_t resources = weights_.size();
  std::vector<std::uint32_t> parent(resources);
  for (std::size_t r = 0; r < resources; ++r) {
    parent[r] = static_cast<std::uint32_t>(r);
  }
  auto find = [&parent](std::uint32_t r) {
    while (parent[r] != r) {
      parent[r] = parent[parent[r]];
      r = parent[r];
    }
    return r;
  };
  const std::size_t devices = num_devices();
  for (std::size_t i = 0; i < devices; ++i) {
    const std::uint32_t anchor =
        find(static_cast<std::uint32_t>(arena_[offsets_[i]].r_compute));
    for (std::size_t a = offsets_[i]; a < offsets_[i + 1]; ++a) {
      parent[find(static_cast<std::uint32_t>(arena_[a].r_compute))] = anchor;
      parent[find(static_cast<std::uint32_t>(arena_[a].r_access))] = anchor;
      parent[find(static_cast<std::uint32_t>(arena_[a].r_fronthaul))] = anchor;
    }
  }

  // Dense component ids in order of first device appearance.
  WcgComponents& out = components_;
  out.count = 0;
  out.device_component.assign(devices, WcgComponents::kNone);
  out.resource_component.assign(resources, WcgComponents::kNone);
  std::vector<std::uint32_t> root_component(resources, WcgComponents::kNone);
  for (std::size_t i = 0; i < devices; ++i) {
    const std::uint32_t root =
        find(static_cast<std::uint32_t>(arena_[offsets_[i]].r_compute));
    if (root_component[root] == WcgComponents::kNone) {
      root_component[root] = static_cast<std::uint32_t>(out.count++);
    }
    out.device_component[i] = root_component[root];
  }
  out.resource_local.assign(resources, WcgComponents::kNone);
  for (std::size_t r = 0; r < resources; ++r) {
    // Only resources some option touches belong to a component; find(r) of
    // an untouched resource is its own singleton root with no id assigned.
    out.resource_component[r] =
        root_component[find(static_cast<std::uint32_t>(r))];
  }

  // CSR membership lists: counting sort keeps both lists ascending.
  out.device_offsets.assign(out.count + 1, 0);
  for (std::size_t i = 0; i < devices; ++i) {
    ++out.device_offsets[out.device_component[i] + 1];
  }
  for (std::size_t c = 0; c < out.count; ++c) {
    out.device_offsets[c + 1] += out.device_offsets[c];
  }
  out.device_list.resize(devices);
  {
    std::vector<std::size_t> cursor(out.device_offsets.begin(),
                                    out.device_offsets.end() - 1);
    for (std::size_t i = 0; i < devices; ++i) {
      out.device_list[cursor[out.device_component[i]]++] =
          static_cast<std::uint32_t>(i);
    }
  }
  out.resource_offsets.assign(out.count + 1, 0);
  for (std::size_t r = 0; r < resources; ++r) {
    if (out.resource_component[r] != WcgComponents::kNone) {
      ++out.resource_offsets[out.resource_component[r] + 1];
    }
  }
  for (std::size_t c = 0; c < out.count; ++c) {
    out.resource_offsets[c + 1] += out.resource_offsets[c];
  }
  out.resource_list.resize(out.resource_offsets[out.count]);
  {
    std::vector<std::size_t> cursor(out.resource_offsets.begin(),
                                    out.resource_offsets.end() - 1);
    for (std::size_t r = 0; r < resources; ++r) {
      const std::uint32_t c = out.resource_component[r];
      if (c == WcgComponents::kNone) continue;
      out.resource_local[r] = static_cast<std::uint32_t>(
          cursor[c] - out.resource_offsets[c]);
      out.resource_list[cursor[c]++] = static_cast<std::uint32_t>(r);
    }
  }

  signature_offsets_ = offsets_;
  signature_options_.resize(arena_.size());
  for (std::size_t a = 0; a < arena_.size(); ++a) {
    signature_options_[a] = (static_cast<std::uint64_t>(arena_[a].bs) << 32) |
                            static_cast<std::uint64_t>(arena_[a].server);
  }
  signature_valid_ = true;
  components_valid_ = true;
  ++counters::active().component_finds;
  return components_;
}

void WcgProblem::extract_component(const WcgComponents& split, std::size_t c,
                                   WcgProblem& out) const {
  EOTORA_REQUIRE(c < split.count);
  const std::span<const std::uint32_t> member_devices = split.devices_of(c);
  const std::span<const std::uint32_t> member_resources = split.resources_of(c);

  // The ascending global resource run is [compute][access][fronthaul], and a
  // station's access and fronthaul resources always co-occur, so position in
  // the run (resource_local) is directly the local id in the same layout.
  std::size_t local_servers = 0;
  std::size_t local_stations = 0;
  for (const std::uint32_t r : member_resources) {
    if (r < num_servers_) ++local_servers;
    else if (r < num_servers_ + num_base_stations_) ++local_stations;
  }
  out.num_servers_ = local_servers;
  out.num_base_stations_ = local_stations;

  out.weights_.resize(member_resources.size());
  for (std::size_t t = 0; t < member_resources.size(); ++t) {
    out.weights_[t] = weights_[member_resources[t]];
  }

  out.arena_.clear();
  out.offsets_.clear();
  out.offsets_.reserve(member_devices.size() + 1);
  out.offsets_.push_back(0);
  for (const std::uint32_t i : member_devices) {
    for (std::size_t a = offsets_[i]; a < offsets_[i + 1]; ++a) {
      Option opt = arena_[a];
      opt.server = split.resource_local[opt.r_compute];
      opt.bs = split.resource_local[opt.r_access] - local_servers;
      opt.r_compute = split.resource_local[opt.r_compute];
      opt.r_access = split.resource_local[opt.r_access];
      opt.r_fronthaul = split.resource_local[opt.r_fronthaul];
      out.arena_.push_back(opt);
    }
    out.offsets_.push_back(out.arena_.size());
  }

  out.device_of_.resize(out.arena_.size());
  for (std::size_t i = 0; i < member_devices.size(); ++i) {
    for (std::size_t a = out.offsets_[i]; a < out.offsets_[i + 1]; ++a) {
      out.device_of_[a] = static_cast<std::uint32_t>(i);
    }
  }

  // Same CSR build as rebuild(): local entries keep the relative order of
  // the global index restricted to the component, so every engine sweep
  // enumerates devices in the same relative order as the global problem.
  const std::size_t resources = out.weights_.size();
  out.index_offsets_.assign(resources + 1, 0);
  for (const Option& opt : out.arena_) {
    ++out.index_offsets_[opt.r_compute + 1];
    ++out.index_offsets_[opt.r_access + 1];
    ++out.index_offsets_[opt.r_fronthaul + 1];
  }
  for (std::size_t r = 0; r < resources; ++r) {
    out.index_offsets_[r + 1] += out.index_offsets_[r];
  }
  out.index_entries_.resize(3 * out.arena_.size());
  for (std::size_t a = 0; a < out.arena_.size(); ++a) {
    const Option& opt = out.arena_[a];
    out.index_entries_[out.index_offsets_[opt.r_compute]++] =
        static_cast<std::uint32_t>(a);
    out.index_entries_[out.index_offsets_[opt.r_access]++] =
        static_cast<std::uint32_t>(a);
    out.index_entries_[out.index_offsets_[opt.r_fronthaul]++] =
        static_cast<std::uint32_t>(a);
  }
  for (std::size_t r = resources; r > 0; --r) {
    out.index_offsets_[r] = out.index_offsets_[r - 1];
  }
  out.index_offsets_[0] = 0;
  out.components_valid_ = false;
  out.signature_valid_ = false;
}

LoadTracker::LoadTracker(const WcgProblem& problem, Profile profile)
    : problem_(&problem), profile_(std::move(profile)) {
  EOTORA_REQUIRE(profile_.size() == problem.num_devices());
  loads_.assign(problem.num_resources(), 0.0);
  load_squares_.assign(problem.num_resources(), 0.0);
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    EOTORA_REQUIRE(profile_[i] < problem.options(i).size());
    add_device(i, problem.options(i)[profile_[i]], +1.0);
  }
}

void LoadTracker::add_device(std::size_t device, const Option& option,
                             double sign) {
  (void)device;
  loads_[option.r_compute] += sign * option.p_compute;
  loads_[option.r_access] += sign * option.p_access;
  loads_[option.r_fronthaul] += sign * option.p_fronthaul;
  load_squares_[option.r_compute] += sign * option.p_compute * option.p_compute;
  load_squares_[option.r_access] += sign * option.p_access * option.p_access;
  load_squares_[option.r_fronthaul] +=
      sign * option.p_fronthaul * option.p_fronthaul;
}

double LoadTracker::total_cost() const {
  return kernels::weighted_sumsq(problem_->weights().data(), loads_.data(),
                                 loads_.size());
}

double LoadTracker::player_cost(std::size_t device) const {
  const Option& opt = problem_->options(device)[profile_[device]];
  return problem_->weight(opt.r_compute) * opt.p_compute *
             loads_[opt.r_compute] +
         problem_->weight(opt.r_access) * opt.p_access * loads_[opt.r_access] +
         problem_->weight(opt.r_fronthaul) * opt.p_fronthaul *
             loads_[opt.r_fronthaul];
}

double LoadTracker::cost_if_moved(std::size_t device,
                                  std::size_t option_index) const {
  const std::span<const Option> opts = problem_->options(device);
  const Option& cur = opts[profile_[device]];
  const Option& alt = opts[option_index];
  // Load on each of alt's resources excluding the device itself, then add
  // the device back. The current option's contribution must be subtracted
  // only where the resources coincide.
  auto load_without = [&](std::size_t r, double p_cur_on_r) {
    return loads_[r] - p_cur_on_r;
  };
  const double l_compute = load_without(
      alt.r_compute, alt.r_compute == cur.r_compute ? cur.p_compute : 0.0);
  const double l_access = load_without(
      alt.r_access, alt.r_access == cur.r_access ? cur.p_access : 0.0);
  const double l_fronthaul =
      load_without(alt.r_fronthaul,
                   alt.r_fronthaul == cur.r_fronthaul ? cur.p_fronthaul : 0.0);
  return problem_->weight(alt.r_compute) * alt.p_compute *
             (l_compute + alt.p_compute) +
         problem_->weight(alt.r_access) * alt.p_access *
             (l_access + alt.p_access) +
         problem_->weight(alt.r_fronthaul) * alt.p_fronthaul *
             (l_fronthaul + alt.p_fronthaul);
}

double LoadTracker::delta_cost(std::size_t device,
                               std::size_t option_index) const {
  const std::span<const Option> opts = problem_->options(device);
  if (option_index == profile_[device]) return 0.0;
  const Option& cur = opts[profile_[device]];
  const Option& alt = opts[option_index];
  // Only the changed resources contribute:
  //   leaving r:  m_r ((P_r - p)² - P_r²) = m_r (p - 2 P_r) p
  //   joining r:  m_r ((P_r + p)² - P_r²) = m_r (2 P_r + p) p
  // Shared categories (same server / same base station) cancel exactly and
  // are skipped, matching move()'s update rule.
  double delta = 0.0;
  auto leave = [&](std::size_t r, double p) {
    delta += problem_->weight(r) * (p - 2.0 * loads_[r]) * p;
  };
  auto join = [&](std::size_t r, double p) {
    delta += problem_->weight(r) * (2.0 * loads_[r] + p) * p;
  };
  if (cur.r_compute != alt.r_compute) {
    leave(cur.r_compute, cur.p_compute);
    join(alt.r_compute, alt.p_compute);
  }
  if (cur.r_access != alt.r_access) {
    leave(cur.r_access, cur.p_access);
    join(alt.r_access, alt.p_access);
  }
  if (cur.r_fronthaul != alt.r_fronthaul) {
    leave(cur.r_fronthaul, cur.p_fronthaul);
    join(alt.r_fronthaul, alt.p_fronthaul);
  }
  return delta;
}

double LoadTracker::total_cost_if_moved(std::size_t device,
                                        std::size_t option_index) const {
  const std::span<const Option> opts = problem_->options(device);
  const Option& cur = opts[profile_[device]];
  const Option& alt = opts[option_index];
  // Adjusted loads on the at most six changed resources. Each changed
  // resource takes exactly one subtract or add — the same single operation
  // move() would apply — so the summation below reproduces the bits of
  // { move(); total_cost(); } without mutating the tracker.
  std::size_t changed_r[6];
  double changed_load[6];
  std::size_t m = 0;
  if (option_index != profile_[device]) {
    if (cur.r_compute != alt.r_compute) {
      changed_r[m] = cur.r_compute;
      changed_load[m++] = loads_[cur.r_compute] - cur.p_compute;
      changed_r[m] = alt.r_compute;
      changed_load[m++] = loads_[alt.r_compute] + alt.p_compute;
    }
    if (cur.r_access != alt.r_access) {
      changed_r[m] = cur.r_access;
      changed_load[m++] = loads_[cur.r_access] - cur.p_access;
      changed_r[m] = alt.r_access;
      changed_load[m++] = loads_[alt.r_access] + alt.p_access;
    }
    if (cur.r_fronthaul != alt.r_fronthaul) {
      changed_r[m] = cur.r_fronthaul;
      changed_load[m++] = loads_[cur.r_fronthaul] - cur.p_fronthaul;
      changed_r[m] = alt.r_fronthaul;
      changed_load[m++] = loads_[alt.r_fronthaul] + alt.p_fronthaul;
    }
  }
  double cost = 0.0;
  for (std::size_t r = 0; r < loads_.size(); ++r) {
    double load = loads_[r];
    for (std::size_t t = 0; t < m; ++t) {
      if (changed_r[t] == r) {
        load = changed_load[t];
        break;
      }
    }
    cost += problem_->weight(r) * load * load;
  }
  return cost;
}

LoadTracker::BestResponse LoadTracker::best_response(
    std::size_t device) const {
  const std::span<const Option> opts = problem_->options(device);
  const double current = player_cost(device);
  BestResponse best{profile_[device], current, current};
  for (std::size_t o = 0; o < opts.size(); ++o) {
    if (o == profile_[device]) continue;
    const double c = cost_if_moved(device, o);
    if (c < best.cost) {
      best.cost = c;
      best.option_index = o;
    }
  }
  return best;
}

void LoadTracker::move(std::size_t device, std::size_t option_index) {
  EOTORA_REQUIRE(device < profile_.size());
  const std::span<const Option> opts = problem_->options(device);
  EOTORA_REQUIRE(option_index < opts.size());
  if (option_index == profile_[device]) return;
  const Option& cur = opts[profile_[device]];
  const Option& nxt = opts[option_index];
  // Per-category update with coincidence skip: within one device's options,
  // equal resource index implies equal p (p depends only on the device plus
  // the base station or server), so shared categories cancel exactly and
  // skipping them keeps those loads' bits untouched.
  if (cur.r_compute != nxt.r_compute) {
    loads_[cur.r_compute] -= cur.p_compute;
    load_squares_[cur.r_compute] -= cur.p_compute * cur.p_compute;
    loads_[nxt.r_compute] += nxt.p_compute;
    load_squares_[nxt.r_compute] += nxt.p_compute * nxt.p_compute;
  }
  if (cur.r_access != nxt.r_access) {
    loads_[cur.r_access] -= cur.p_access;
    load_squares_[cur.r_access] -= cur.p_access * cur.p_access;
    loads_[nxt.r_access] += nxt.p_access;
    load_squares_[nxt.r_access] += nxt.p_access * nxt.p_access;
  }
  if (cur.r_fronthaul != nxt.r_fronthaul) {
    loads_[cur.r_fronthaul] -= cur.p_fronthaul;
    load_squares_[cur.r_fronthaul] -= cur.p_fronthaul * cur.p_fronthaul;
    loads_[nxt.r_fronthaul] += nxt.p_fronthaul;
    load_squares_[nxt.r_fronthaul] += nxt.p_fronthaul * nxt.p_fronthaul;
  }
  profile_[device] = option_index;
}

double LoadTracker::potential() const {
  double phi = 0.0;
  for (std::size_t r = 0; r < loads_.size(); ++r) {
    phi += 0.5 * problem_->weight(r) *
           (loads_[r] * loads_[r] + load_squares_[r]);
  }
  return phi;
}

BestResponseEngine::BestResponseEngine(LoadTracker& tracker)
    : problem_(tracker.problem_),
      tracker_(&tracker),
      num_servers_(problem_->num_servers()),
      num_base_stations_(problem_->num_base_stations()) {
  const std::size_t devices = problem_->num_devices();
  const std::size_t entries = problem_->num_options();
  cached_.resize(devices);
  server_of_entry_.resize(entries);

  // (device, base station) groups: the arena enumerates options base
  // station-major within each device, so each group is a contiguous run of
  // equal r_access and shares one access and one fronthaul term.
  groups_.clear();
  device_group_begin_.assign(devices + 1, 0);
  for (std::size_t j = 0; j < devices; ++j) {
    device_group_begin_[j] = static_cast<std::uint32_t>(groups_.size());
    const std::size_t lo = problem_->arena_offset(j);
    const std::size_t hi = problem_->arena_offset(j + 1);
    std::size_t a = lo;
    while (a < hi) {
      std::size_t b = a + 1;
      while (b < hi &&
             problem_->option_at(b).r_access == problem_->option_at(a).r_access) {
        ++b;
      }
      groups_.push_back({static_cast<std::uint32_t>(a),
                         static_cast<std::uint32_t>(b),
                         static_cast<std::uint32_t>(j),
                         static_cast<std::uint32_t>(problem_->option_at(a).bs)});
      a = b;
    }
  }
  device_group_begin_[devices] = static_cast<std::uint32_t>(groups_.size());

  // Per-pair p and fl(w·p) tables. fl(w·p) is rounded first exactly as in
  // cost_if_moved's weight·p·(load+p), so the cached terms reproduce its
  // bits. Frequencies (and so weights) are fixed for the engine's lifetime:
  // BDMA constructs a fresh engine per inner CGBA call.
  pc_.assign(devices * num_servers_, 0.0);
  wpc_.assign(devices * num_servers_, 0.0);
  tc_.assign(devices * num_servers_, 0.0);
  pa_.assign(devices * num_base_stations_, 0.0);
  wpa_.assign(devices * num_base_stations_, 0.0);
  ta_.assign(devices * num_base_stations_, 0.0);
  pf_.assign(devices * num_base_stations_, 0.0);
  wpf_.assign(devices * num_base_stations_, 0.0);
  tf_.assign(devices * num_base_stations_, 0.0);
  for (std::size_t a = 0; a < entries; ++a) {
    const Option& opt = problem_->option_at(a);
    const std::size_t j = problem_->device_of(a);
    server_of_entry_[a] = static_cast<std::uint32_t>(opt.server);
    pc_[j * num_servers_ + opt.server] = opt.p_compute;
    wpc_[j * num_servers_ + opt.server] =
        problem_->weight(opt.r_compute) * opt.p_compute;
    pa_[j * num_base_stations_ + opt.bs] = opt.p_access;
    wpa_[j * num_base_stations_ + opt.bs] =
        problem_->weight(opt.r_access) * opt.p_access;
    pf_[j * num_base_stations_ + opt.bs] = opt.p_fronthaul;
    wpf_[j * num_base_stations_ + opt.bs] =
        problem_->weight(opt.r_fronthaul) * opt.p_fronthaul;
  }

  cur_server_.resize(devices);
  cur_bs_.resize(devices);
  for (std::size_t j = 0; j < devices; ++j) {
    const Option& cur = problem_->options(j)[tracker_->profile()[j]];
    cur_server_[j] = static_cast<std::uint32_t>(cur.server);
    cur_bs_[j] = static_cast<std::uint32_t>(cur.bs);
  }
  for (std::size_t a = 0; a < entries; ++a) {
    const Option& opt = problem_->option_at(a);
    const std::size_t j = problem_->device_of(a);
    refresh_compute_term(j, opt.server);
    refresh_access_term(j, opt.bs);
    refresh_fronthaul_term(j, opt.bs);
  }

  // CSR sweep sets: the distinct devices with an option on each server (from
  // the option-level inverted index, deduplicating its device-major runs)
  // and on each base station (one group per device-BS pair).
  server_device_offsets_.assign(num_servers_ + 1, 0);
  server_device_entries_.clear();
  for (std::size_t s = 0; s < num_servers_; ++s) {
    std::size_t last = devices;  // sentinel: no device yet
    for (const std::uint32_t a : problem_->options_on_resource(s)) {
      const std::size_t j = problem_->device_of(a);
      if (j == last) continue;
      last = j;
      server_device_entries_.push_back(static_cast<std::uint32_t>(j));
    }
    server_device_offsets_[s + 1] =
        static_cast<std::uint32_t>(server_device_entries_.size());
  }
  bs_device_offsets_.assign(num_base_stations_ + 1, 0);
  for (const kernels::ScanGroup& grp : groups_) {
    ++bs_device_offsets_[grp.bs + 1];
  }
  for (std::size_t k = 0; k < num_base_stations_; ++k) {
    bs_device_offsets_[k + 1] += bs_device_offsets_[k];
  }
  bs_device_entries_.resize(groups_.size());
  for (const kernels::ScanGroup& grp : groups_) {
    bs_device_entries_[bs_device_offsets_[grp.bs]++] = grp.device;
  }
  for (std::size_t k = num_base_stations_; k > 0; --k) {
    bs_device_offsets_[k] = bs_device_offsets_[k - 1];
  }
  bs_device_offsets_[0] = 0;
}

void BestResponseEngine::refresh_compute_term(std::size_t device,
                                              std::size_t server) {
  const std::size_t i = device * num_servers_ + server;
  const double p = pc_[i];
  const double l =
      tracker_->loads_[server] - (cur_server_[device] == server ? p : 0.0);
  tc_[i] = wpc_[i] * (l + p);
}

void BestResponseEngine::refresh_access_term(std::size_t device,
                                             std::size_t bs) {
  const std::size_t i = device * num_base_stations_ + bs;
  const double p = pa_[i];
  const double l = tracker_->loads_[num_servers_ + bs] -
                   (cur_bs_[device] == bs ? p : 0.0);
  ta_[i] = wpa_[i] * (l + p);
}

void BestResponseEngine::refresh_fronthaul_term(std::size_t device,
                                                std::size_t bs) {
  const std::size_t i = device * num_base_stations_ + bs;
  const double p = pf_[i];
  const double l = tracker_->loads_[num_servers_ + num_base_stations_ + bs] -
                   (cur_bs_[device] == bs ? p : 0.0);
  tf_[i] = wpf_[i] * (l + p);
}

const LoadTracker::BestResponse& BestResponseEngine::best_response(
    std::size_t device) {
  const std::size_t base = problem_->arena_offset(device);
  const std::size_t cur = tracker_->profile()[device];
  // Mirror LoadTracker::best_response exactly: same initial champion, same
  // scan order, same strict-< tie handling. Each candidate cost is the same
  // left-associated (t_compute + t_access) + t_fronthaul sum cost_if_moved
  // computes, assembled from the cached terms — identical bits, two
  // additions instead of the full nine-flop evaluation.
  const double current = tracker_->player_cost(device);
  LoadTracker::BestResponse best{cur, current, current};
  const std::uint32_t g_begin = device_group_begin_[device];
  const kernels::ScanHit hit = kernels::best_response_scan(
      tc_.data() + device * num_servers_, server_of_entry_.data(),
      groups_.data() + g_begin, device_group_begin_[device + 1] - g_begin,
      ta_.data() + device * num_base_stations_,
      tf_.data() + device * num_base_stations_,
      static_cast<std::uint32_t>(base + cur), current);
  if (hit.entry != kernels::kNoEntry) {
    best.option_index = hit.entry - base;
    best.cost = hit.cost;
  }
  cached_[device] = best;
  return cached_[device];
}

void BestResponseEngine::move(std::size_t device, std::size_t option_index) {
  const std::span<const Option> opts = problem_->options(device);
  if (option_index == tracker_->profile()[device]) return;
  const Option& cur = opts[tracker_->profile()[device]];
  const Option& nxt = opts[option_index];
  // The at most six resources whose loads change, mirroring the tracker's
  // coincidence skip: a category shared by the old and new option keeps its
  // load bits AND its exclusion relevance, so its terms stay valid.
  std::size_t changed[6];
  std::size_t m = 0;
  if (cur.r_compute != nxt.r_compute) {
    changed[m++] = cur.r_compute;
    changed[m++] = nxt.r_compute;
  }
  if (cur.r_access != nxt.r_access) {
    changed[m++] = cur.r_access;
    changed[m++] = nxt.r_access;
  }
  if (cur.r_fronthaul != nxt.r_fronthaul) {
    changed[m++] = cur.r_fronthaul;
    changed[m++] = nxt.r_fronthaul;
  }

  tracker_->move(device, option_index);
  // New exclusion context first: the mover sits in the sweep sets of every
  // changed resource, so the sweeps below rebuild its own terms against its
  // new current option along with everyone else's.
  cur_server_[device] = static_cast<std::uint32_t>(nxt.server);
  cur_bs_[device] = static_cast<std::uint32_t>(nxt.bs);
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t r = changed[t];
    if (r < num_servers_) {
      term_refreshes_ +=
          server_device_offsets_[r + 1] - server_device_offsets_[r];
      for (std::size_t e = server_device_offsets_[r];
           e < server_device_offsets_[r + 1]; ++e) {
        refresh_compute_term(server_device_entries_[e], r);
      }
    } else if (r < num_servers_ + num_base_stations_) {
      const std::size_t k = r - num_servers_;
      term_refreshes_ += bs_device_offsets_[k + 1] - bs_device_offsets_[k];
      for (std::size_t e = bs_device_offsets_[k]; e < bs_device_offsets_[k + 1];
           ++e) {
        refresh_access_term(bs_device_entries_[e], k);
      }
    } else {
      const std::size_t k = r - num_servers_ - num_base_stations_;
      term_refreshes_ += bs_device_offsets_[k + 1] - bs_device_offsets_[k];
      for (std::size_t e = bs_device_offsets_[k]; e < bs_device_offsets_[k + 1];
           ++e) {
        refresh_fronthaul_term(bs_device_entries_[e], k);
      }
    }
  }
}

}  // namespace eotora::core
