# Empty dependencies file for ablation_poa.
# This may be replaced when dependencies are built.
