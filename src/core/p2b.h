// P2-B — optimal clock frequencies for a fixed assignment (paper §V-A).
//
// The objective  V·T_t(x̄, ȳ, Ω, β) + Q·Θ(Ω, p)  separates over servers:
//   min_{ω ∈ [F^L_n, F^U_n]}  V·A_n / (cores_n ω 1e9)
//                             + Q·p·watts_n(ω)·slot_h/1e6
// with A_n = (Σ_{i on n} sqrt(f_i/σ_{i,n}))². Each piece is convex (1/ω plus
// a convex energy model), so a derivative bisection solves it to tolerance —
// this replaces the paper's CVX call.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "core/wcg.h"

namespace eotora::core {

struct P2bResult {
  Frequencies frequencies;
  // Full drift-plus-penalty objective f(x, y, Ω) = V·T_t + Q·Θ at the
  // optimal frequencies (includes the frequency-independent communication
  // latency and the -Q·C̄ term).
  double objective = 0.0;
};

// Reusable buffers for solve_p2b: the per-server load sums plus the SoA
// lanes of the batched bisection (servers whose energy model has an affine
// power derivative — the quadratic and linear models — solve as lockstep
// kernel lanes; other models stay on the per-server scalar path).
struct P2bWorkspace {
  std::vector<double> load;  // Σ_{i on n} sqrt(f_i / σ_{i,n})
  std::vector<double> neg_va, cores, lo, hi, d_slope, d_intercept, x;
  std::vector<std::uint32_t> lane_server;  // lane -> server index
};

// Solves P2-B for the given assignment. Requires V >= 0, Q >= 0.
[[nodiscard]] P2bResult solve_p2b(const Instance& instance,
                                  const SlotState& state,
                                  const Assignment& assignment, double v,
                                  double q, double tolerance = 1e-7);

// Allocation-free overload (same result bits as the wrapper above).
void solve_p2b(const Instance& instance, const SlotState& state,
               const Assignment& assignment, double v, double q,
               double tolerance, P2bWorkspace& workspace, P2bResult& out);

// Arena-load overload: reads each device's sqrt(f_i / σ_{i,n}) straight from
// the WCG option arena (p_compute of the chosen option, accumulated in
// device order — the same bits the sqrt chain above recomputes) instead of
// re-deriving it. `assignment` must decode `profile` — BDMA already has both
// in hand.
void solve_p2b(const Instance& instance, const SlotState& state,
               const Assignment& assignment, const WcgProblem& problem,
               const Profile& profile, double v, double q, double tolerance,
               P2bWorkspace& workspace, P2bResult& out);

// Pre-kernel per-server scalar path, kept verbatim as the differential
// oracle tests/test_kernels.cpp compares the batched path against.
[[nodiscard]] P2bResult solve_p2b_reference(const Instance& instance,
                                            const SlotState& state,
                                            const Assignment& assignment,
                                            double v, double q,
                                            double tolerance = 1e-7);

// f(x, y, Ω) = V·T_t(x, y, Ω, β) + Q·Θ(Ω, p) — the P2 objective (paper §V).
[[nodiscard]] double dpp_objective(const Instance& instance,
                                   const SlotState& state,
                                   const Assignment& assignment,
                                   const Frequencies& frequencies, double v,
                                   double q);

}  // namespace eotora::core
