#include "core/instance.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace eotora::core {
namespace {

TEST(Instance, ValidatesSigmaShape) {
  auto topo = test::tiny_topology(2);
  SuitabilityMatrix wrong_rows(1, std::vector<double>(3, 1.0));
  EXPECT_THROW(Instance(topo, wrong_rows, 1.0), std::invalid_argument);
  SuitabilityMatrix wrong_cols(2, std::vector<double>(2, 1.0));
  EXPECT_THROW(Instance(topo, wrong_cols, 1.0), std::invalid_argument);
}

TEST(Instance, ValidatesSigmaRange) {
  auto topo = test::tiny_topology(2);
  SuitabilityMatrix zero(2, std::vector<double>(3, 0.0));
  EXPECT_THROW(Instance(topo, zero, 1.0), std::invalid_argument);
  SuitabilityMatrix above(2, std::vector<double>(3, 1.5));
  EXPECT_THROW(Instance(topo, above, 1.0), std::invalid_argument);
}

TEST(Instance, ValidatesBudgetAndSlot) {
  auto topo = test::tiny_topology(2);
  SuitabilityMatrix sigma(2, std::vector<double>(3, 1.0));
  EXPECT_THROW(Instance(topo, sigma, 0.0), std::invalid_argument);
  EXPECT_THROW(Instance(topo, sigma, 1.0, 0.0), std::invalid_argument);
}

TEST(Instance, ServerCostFollowsPriceAndPower) {
  const Instance instance = test::tiny_instance(2, 5.0);
  const auto& server = instance.topology().server(topology::ServerId{0});
  const double price = 80.0;  // $/MWh
  const double ghz = 2.5;
  const double expected =
      price * server.power_watts(ghz) * instance.slot_hours() / 1e6;
  EXPECT_DOUBLE_EQ(instance.server_cost(0, ghz, price), expected);
}

TEST(Instance, EnergyCostSumsServers) {
  const Instance instance = test::tiny_instance(2, 5.0);
  const Frequencies freq = instance.min_frequencies();
  double expected = 0.0;
  for (std::size_t n = 0; n < instance.num_servers(); ++n) {
    expected += instance.server_cost(n, freq[n], 60.0);
  }
  EXPECT_DOUBLE_EQ(instance.energy_cost(freq, 60.0), expected);
  EXPECT_DOUBLE_EQ(instance.theta(freq, 60.0), expected - 5.0);
}

TEST(Instance, MinMaxFrequenciesComeFromServers) {
  const Instance instance = test::tiny_instance(2, 5.0);
  const auto lo = instance.min_frequencies();
  const auto hi = instance.max_frequencies();
  ASSERT_EQ(lo.size(), 3u);
  EXPECT_DOUBLE_EQ(lo[0], 1.8);
  EXPECT_DOUBLE_EQ(lo[2], 2.0);
  EXPECT_DOUBLE_EQ(hi[0], 3.6);
  EXPECT_DOUBLE_EQ(hi[2], 3.0);
}

TEST(Instance, FrequenciesFeasibleChecksRange) {
  const Instance instance = test::tiny_instance(2, 5.0);
  EXPECT_TRUE(instance.frequencies_feasible(instance.min_frequencies()));
  EXPECT_TRUE(instance.frequencies_feasible(instance.max_frequencies()));
  EXPECT_FALSE(instance.frequencies_feasible({1.0, 2.0, 2.5}));
  EXPECT_FALSE(instance.frequencies_feasible({2.0, 2.0}));  // wrong size
}

TEST(Instance, RandomSigmaInRange) {
  util::Rng rng(9);
  const auto sigma = Instance::random_sigma(10, 4, rng);
  ASSERT_EQ(sigma.size(), 10u);
  for (const auto& row : sigma) {
    ASSERT_EQ(row.size(), 4u);
    for (double s : row) {
      EXPECT_GE(s, 0.5);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(Instance, SuitabilityAccessorBoundsChecked) {
  const Instance instance = test::tiny_instance(2, 5.0);
  EXPECT_NO_THROW((void)instance.suitability(1, 2));
  EXPECT_THROW((void)instance.suitability(2, 0), std::invalid_argument);
  EXPECT_THROW((void)instance.suitability(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace eotora::core
