file(REMOVE_RECURSE
  "libeotora_energy.a"
)
