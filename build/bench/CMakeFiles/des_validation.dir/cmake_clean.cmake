file(REMOVE_RECURSE
  "CMakeFiles/des_validation.dir/des_validation.cpp.o"
  "CMakeFiles/des_validation.dir/des_validation.cpp.o.d"
  "des_validation"
  "des_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
