// AVX2 backend. Compiled with -mavx2 (see src/core/CMakeLists.txt) but
// registered only when the CPU reports AVX2 at runtime; every entry point is
// reached through detail::avx2_backend(), never directly.
//
// Bit-identity: all vector arithmetic is lane-wise IEEE-754
// correctly-rounded (vaddpd/vsubpd/vmulpd/vdivpd/vsqrtpd) in the same
// per-element order as the scalar backend, the TU is built with
// -ffp-contract=off so no mul+add pair can fuse, and order-sensitive
// reductions fall back to the shared scalar routines. The only
// reassociation lives in weighted_sumsq_fast, which dispatch() routes to
// exclusively under fast-math.
#include "core/kernels/kernels_detail.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace eotora::core::kernels::detail {

namespace {

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

// All-lanes i32 gather. The masked form takes an explicit source vector,
// sidestepping _mm256_undefined_pd (GCC flags its intentionally
// uninitialized read under -Wmaybe-uninitialized, which CI promotes).
inline __m256d gather_pd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx,
                                  _mm256_castsi256_pd(_mm256_set1_epi64x(-1)),
                                  8);
}

void sqrt_div_avx2(const double* num, const double* den, double* out,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d q =
        _mm256_div_pd(_mm256_loadu_pd(num + i), _mm256_loadu_pd(den + i));
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(q));
  }
  for (; i < n; ++i) out[i] = std::sqrt(num[i] / den[i]);
}

void div_gather_avx2(const double* num, const double* den,
                     const std::uint32_t* key, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(key + i));
    const __m256d d = gather_pd(den, idx);
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(num + i), d));
  }
  for (; i < n; ++i) out[i] = num[i] / den[key[i]];
}

// First lane (lowest index) of `costs` equal to the block minimum `hmin`.
// min() is commutative for non-NaN inputs, so equality against the reduced
// minimum recovers the first occurrence — the same entry a strict-< running
// scan would keep.
inline std::uint32_t first_min_lane(__m256d costs, double hmin) {
  const int eq = _mm256_movemask_pd(
      _mm256_cmp_pd(costs, _mm256_set1_pd(hmin), _CMP_EQ_OQ));
  return static_cast<std::uint32_t>(__builtin_ctz(static_cast<unsigned>(eq)));
}

inline double horizontal_min(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
}

ScanHit scan_avx2(const double* tc, const std::uint32_t* server_of_entry,
                  const ScanGroup* groups, std::size_t num_groups,
                  const double* ta, const double* tf, std::uint32_t skip_entry,
                  double bound, bool fast) {
  double best_cost = bound;
  std::uint32_t best_entry = kNoEntry;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const ScanGroup& grp = groups[g];
    const double a_term = ta[grp.bs];
    const double f_term = tf[grp.bs];
    const __m256d av = _mm256_set1_pd(a_term);
    const __m256d fv = _mm256_set1_pd(f_term);
    const __m256d afv = _mm256_set1_pd(a_term + f_term);
    std::uint32_t a = grp.begin;
    for (; a + 4 <= grp.end; a += 4) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(server_of_entry + a));
      const __m256d t = gather_pd(tc, idx);
      // Exact path keeps cost_if_moved's left-associated two additions.
      __m256d c = fast ? _mm256_add_pd(t, afv)
                       : _mm256_add_pd(_mm256_add_pd(t, av), fv);
      if (skip_entry - a < 4) {
        // Knock the skipped current option out with +inf: it can never win
        // a strict-< comparison against the finite bound.
        alignas(32) double lanes[4];
        _mm256_store_pd(lanes, c);
        lanes[skip_entry - a] = std::numeric_limits<double>::infinity();
        c = _mm256_load_pd(lanes);
      }
      const double hmin = horizontal_min(c);
      // Block minimum vs. running champion uses the same strict < a scalar
      // scan would apply to each entry; ties keep the earlier entry.
      if (hmin < best_cost) {
        best_cost = hmin;
        best_entry = a + first_min_lane(c, hmin);
      }
    }
    for (; a < grp.end; ++a) {
      if (a == skip_entry) continue;
      const double c = fast ? tc[server_of_entry[a]] + (a_term + f_term)
                            : (tc[server_of_entry[a]] + a_term) + f_term;
      scan_consider(a, c, best_cost, best_entry);
    }
  }
  return {best_entry, best_cost};
}

// Lane-wise p2b_derivative_affine: identical operation order, four lanes at
// a time (see kernels_detail.h for the scalar form it mirrors).
inline __m256d p2b_derivative_avx2(__m256d neg_va, __m256d cores,
                                   __m256d scale, __m256d slope, __m256d icept,
                                   __m256d w) {
  const __m256d den = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_mul_pd(cores, w), w), _mm256_set1_pd(1e9));
  const __m256d pd = _mm256_add_pd(_mm256_mul_pd(slope, w), icept);
  const __m256d watts =
      _mm256_div_pd(_mm256_mul_pd(pd, cores), _mm256_set1_pd(4.0));
  return _mm256_add_pd(_mm256_div_pd(neg_va, den), _mm256_mul_pd(scale, watts));
}

void p2b_bisect_avx2(const P2bBatchView& batch, double* out_x) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d tolv = _mm256_set1_pd(batch.tolerance);
  const __m256d scale = _mm256_set1_pd(batch.scale);
  std::size_t i = 0;
  for (; i + 4 <= batch.n; i += 4) {
    const __m256d neg_va = _mm256_loadu_pd(batch.neg_va + i);
    const __m256d cores = _mm256_loadu_pd(batch.cores + i);
    const __m256d slope = _mm256_loadu_pd(batch.d_slope + i);
    const __m256d icept = _mm256_loadu_pd(batch.d_intercept + i);
    const __m256d lo = _mm256_loadu_pd(batch.lo + i);
    const __m256d hi = _mm256_loadu_pd(batch.hi + i);
    const __m256d dlo =
        p2b_derivative_avx2(neg_va, cores, scale, slope, icept, lo);
    const __m256d dhi =
        p2b_derivative_avx2(neg_va, cores, scale, slope, icept, hi);
    const __m256d at_lo = _mm256_cmp_pd(dlo, zero, _CMP_GE_OQ);
    const __m256d at_hi =
        _mm256_andnot_pd(at_lo, _mm256_cmp_pd(dhi, zero, _CMP_LE_OQ));
    const __m256d interior = _mm256_andnot_pd(_mm256_or_pd(at_lo, at_hi),
                                              _mm256_castsi256_pd(
                                                  _mm256_set1_epi64x(-1)));
    __m256d a = lo;
    __m256d b = hi;
    // Lockstep bisection: each still-active lane takes exactly the update
    // its scalar bisection would take at the same iteration index; lanes
    // freeze (masked blend) once their bracket is within tolerance, so
    // per-lane results — including the max_iterations cutoff — match the
    // scalar path bit-for-bit.
    for (int iter = 0; iter < batch.max_iterations; ++iter) {
      const __m256d width = _mm256_sub_pd(b, a);
      const __m256d cont = _mm256_and_pd(
          interior, _mm256_cmp_pd(width, tolv, _CMP_GT_OQ));
      if (_mm256_movemask_pd(cont) == 0) break;
      const __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(a, b));
      const __m256d dm =
          p2b_derivative_avx2(neg_va, cores, scale, slope, icept, mid);
      const __m256d neg = _mm256_cmp_pd(dm, zero, _CMP_LT_OQ);
      a = _mm256_blendv_pd(a, mid, _mm256_and_pd(cont, neg));
      b = _mm256_blendv_pd(b, mid, _mm256_andnot_pd(neg, cont));
    }
    __m256d x = _mm256_mul_pd(half, _mm256_add_pd(a, b));
    x = _mm256_blendv_pd(x, lo, at_lo);
    x = _mm256_blendv_pd(x, hi, at_hi);
    _mm256_storeu_pd(out_x + i, x);
  }
  if (i < batch.n) {
    P2bBatchView tail = batch;
    tail.n = batch.n - i;
    tail.neg_va = batch.neg_va + i;
    tail.cores = batch.cores + i;
    tail.lo = batch.lo + i;
    tail.hi = batch.hi + i;
    tail.d_slope = batch.d_slope + i;
    tail.d_intercept = batch.d_intercept + i;
    p2b_bisect_scalar(tail, out_x + i);
  }
}

double weighted_sumsq_fast_avx2(const double* w, const double* x,
                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d term =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(w + i), xv), xv);
    acc = _mm256_add_pd(acc, term);
  }
  const __m128d lo128 = _mm256_castpd256_pd128(acc);
  const __m128d hi128 = _mm256_extractf128_pd(acc, 1);
  const __m128d s = _mm_add_pd(lo128, hi128);
  double sum = _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  for (; i < n; ++i) sum += w[i] * x[i] * x[i];
  return sum;
}

constexpr Backend kAvx2{
    "avx2",
    "x86-64 AVX2 lanes (bit-identical to scalar on the default path)",
    &avx2_supported,
    &sqrt_div_avx2,
    &div_gather_avx2,
    &scan_avx2,
    &p2b_bisect_avx2,
    // Order-sensitive exact reduction stays scalar.
    &weighted_sumsq_scalar,
    &weighted_sumsq_fast_avx2,
};

}  // namespace

const Backend* avx2_backend() { return &kAvx2; }

}  // namespace eotora::core::kernels::detail

#else  // !defined(__AVX2__)

namespace eotora::core::kernels::detail {
const Backend* avx2_backend() { return nullptr; }
}  // namespace eotora::core::kernels::detail

#endif
