#include "sim/simulator.h"

#include "util/check.h"
#include "util/timer.h"

namespace eotora::sim {

SimulationResult run_policy(Policy& policy,
                            const std::vector<core::SlotState>& states,
                            std::uint64_t seed) {
  EOTORA_REQUIRE(!states.empty());
  policy.reset();
  util::Rng rng(seed);
  SimulationResult result;
  result.policy_name = policy.name();
  util::Timer timer;
  for (const auto& state : states) {
    result.metrics.record(policy.step(state, rng));
  }
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

SimulationResult run_policy(Policy& policy, const core::Instance& instance,
                            const std::vector<core::SlotState>& states,
                            const AuditConfig& audit, std::uint64_t seed) {
  EOTORA_REQUIRE(!states.empty());
  policy.reset();
  util::Rng rng(seed);
  SlotAuditor auditor(instance, audit);
  SimulationResult result;
  result.policy_name = policy.name();
  double decision_seconds = 0.0;
  for (const auto& state : states) {
    util::Timer timer;
    core::DppSlotResult slot = policy.step(state, rng);
    decision_seconds += timer.elapsed_seconds();
    auditor.observe(state, slot);
    result.metrics.record(slot);
  }
  result.wall_seconds = decision_seconds;
  result.audit = auditor.report();
  return result;
}

WindowAverages tail_averages(const SimulationResult& result,
                             std::size_t window) {
  const auto& latency = result.metrics.latency_series();
  const auto& cost = result.metrics.cost_series();
  const auto& queue = result.metrics.queue_series();
  EOTORA_REQUIRE(window > 0);
  EOTORA_REQUIRE_MSG(window <= latency.size(),
                     "window=" << window << " slots=" << latency.size());
  WindowAverages averages;
  for (std::size_t t = latency.size() - window; t < latency.size(); ++t) {
    averages.latency += latency[t];
    averages.energy_cost += cost[t];
    averages.queue += queue[t];
  }
  const double w = static_cast<double>(window);
  averages.latency /= w;
  averages.energy_cost /= w;
  averages.queue /= w;
  return averages;
}

}  // namespace eotora::sim
