// Model validation — the paper's fluid latency model vs a flow-level
// discrete-event execution of the same decisions (src/des), swept over
// policies x scenario presets x sharing disciplines.
//
// For every (policy, scenario) cell one multi-slot run is driven through
// the policy exactly like sim::run_policy (reset, Rng(1), one step per
// slot), and every slot's decision is fed to three des::FlowSimulator
// instances sharing the decision stream:
//
//   static      kStaticShares, slot-start arrivals — must reproduce the
//               analytic Σ_i L_i to numerical precision (the Eq. (18)-(19)
//               cross-validation; column "static/fluid" prints 1.000000).
//   ps          kProcessorSharing, slot-start arrivals — a work-conserving
//               system under the same decisions; "ps/fluid" < 1 means the
//               paper's static-reservation model is conservative, so its
//               guarantees are safe-side.
//   ps-poisson  kProcessorSharing with within-slot Poisson arrivals —
//               de-synchronized arrival phases, the least favorable case
//               for batching artifacts.
//
// The JSON artifact (--out) is an eotora-sweep-v1 document with one record
// per cell carrying the totals, ratios, event counts, spillovers, and the
// max per-device static gap; BENCH_des.json at the repo root is the
// committed snapshot (see EXPERIMENTS.md for regeneration).
//
//   --devices=N --horizon=T --seed=S --rate=L --out=path.json
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "eotora/eotora.h"

namespace {

struct CellResult {
  std::string policy;
  std::string scenario;
  double analytic = 0.0;
  double realized_static = 0.0;
  double realized_ps = 0.0;
  double realized_ps_poisson = 0.0;
  double max_static_device_gap = 0.0;
  std::size_t events_static = 0;
  std::size_t events_ps = 0;
  std::size_t events_ps_poisson = 0;
  std::size_t spillovers_ps = 0;
  std::size_t spillovers_ps_poisson = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace eotora;
  try {
    const util::Args args(argc, argv,
                          {"devices", "horizon", "seed", "rate", "out"});
    const auto devices = static_cast<std::size_t>(args.get_int("devices", 24));
    const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 48));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const double rate = args.get_double("rate", 4.0);

    const std::vector<std::string> policies = {"dpp-bdma", "dpp-mcba",
                                               "greedy-budget"};
    const std::vector<std::string>& scenarios = sim::registered_scenarios();

    std::cout << "Model validation: fluid latency model vs flow-level DES\n"
              << "I = " << devices << ", T = " << horizon
              << " slots, seed = " << seed << ", Poisson rate = " << rate
              << "/slot\n\n";

    util::Table table({"policy", "scenario", "fluid (s)", "static/fluid",
                       "ps/fluid", "ps-poisson/fluid", "max dev gap (s)",
                       "events", "ps spill"});
    std::vector<CellResult> cells;
    for (const std::string& policy_name : policies) {
      for (const std::string& scenario_name : scenarios) {
        sim::ScenarioConfig config;
        sim::apply_scenario_preset(scenario_name, config);
        config.devices = devices;
        config.seed = seed;
        sim::ScenarioSource source(config, horizon);
        const core::Instance& instance = source.instance();

        sim::PolicyParams params;
        params.bdma_iterations = 3;
        const auto policy = sim::make_policy(policy_name, instance, params);

        des::HorizonConfig fixed_config;
        fixed_config.discipline = des::SharingDiscipline::kStaticShares;
        fixed_config.keep_tasks = false;
        des::HorizonConfig ps_config = fixed_config;
        ps_config.discipline = des::SharingDiscipline::kProcessorSharing;
        des::HorizonConfig poisson_config = ps_config;
        poisson_config.arrivals = des::ArrivalModel::kPoisson;
        poisson_config.arrival_rate = rate;
        des::FlowSimulator fixed(instance, fixed_config);
        des::FlowSimulator ps(instance, ps_config);
        des::FlowSimulator ps_poisson(instance, poisson_config);

        // The run_policy() convention: the decision stream here is
        // bit-identical to what the CLI --log path would record.
        policy->reset();
        util::Rng rng(1);
        core::SlotState state;
        while (source.next(state)) {
          const core::DppSlotResult slot = policy->step(state, rng);
          fixed.push_slot(state, slot.decision);
          ps.push_slot(state, slot.decision);
          ps_poisson.push_slot(state, slot.decision);
        }

        const des::HorizonResult fixed_result = fixed.finish();
        const des::HorizonResult ps_result = ps.finish();
        const des::HorizonResult poisson_result = ps_poisson.finish();

        CellResult cell;
        cell.policy = policy_name;
        cell.scenario = scenario_name;
        cell.analytic = fixed_result.total_analytic();
        cell.realized_static = fixed_result.total_realized();
        cell.realized_ps = ps_result.total_realized();
        cell.realized_ps_poisson = poisson_result.total_realized();
        for (const des::SlotGap& gap : fixed_result.slots) {
          cell.max_static_device_gap =
              std::max(cell.max_static_device_gap, gap.max_device_gap);
        }
        cell.events_static = fixed_result.events;
        cell.events_ps = ps_result.events;
        cell.events_ps_poisson = poisson_result.events;
        for (const des::SlotGap& gap : ps_result.slots) {
          cell.spillovers_ps += gap.spillovers;
        }
        for (const des::SlotGap& gap : poisson_result.slots) {
          cell.spillovers_ps_poisson += gap.spillovers;
        }
        cells.push_back(cell);

        table.add_row(
            {cell.policy, cell.scenario,
             util::format_double(cell.analytic, 3),
             util::format_double(cell.realized_static / cell.analytic, 6),
             util::format_double(cell.realized_ps / cell.analytic, 4),
             util::format_double(cell.realized_ps_poisson / cell.analytic, 4),
             util::format_double(cell.max_static_device_gap, 12),
             std::to_string(cell.events_ps),
             std::to_string(cell.spillovers_ps)});
      }
    }
    table.print(std::cout);
    std::cout
        << "\nreading: static/fluid == 1.000000 (max dev gap ~1e-12 s) "
           "validates the Eq. (18)-(19) evaluator against a microscopic "
           "execution on every scenario; ps/fluid < 1 shows the fluid "
           "model is conservative — a work-conserving deployment beats "
           "what the optimizer promises, Poisson phasing included.\n";

    if (args.has("out")) {
      util::Json doc = util::Json::object();
      doc["schema"] = "eotora-sweep-v1";
      doc["commit"] = util::build_info().commit;
      doc["build_type"] = util::build_info().build_type;
      doc["name"] = "des_validation";
      doc["devices"] = devices;
      doc["horizon"] = horizon;
      doc["seed"] = seed;
      doc["arrival_rate"] = rate;
      util::Json policies_json = util::Json::array();
      for (const auto& name : policies) policies_json.push_back(name);
      doc["policies"] = std::move(policies_json);
      util::Json scenarios_json = util::Json::array();
      for (const auto& name : scenarios) scenarios_json.push_back(name);
      doc["scenarios"] = std::move(scenarios_json);
      util::Json records = util::Json::array();
      for (const CellResult& cell : cells) {
        util::Json record = util::Json::object();
        record["policy"] = cell.policy;
        record["scenario"] = cell.scenario;
        record["analytic_latency"] = cell.analytic;
        record["realized_static"] = cell.realized_static;
        record["realized_ps"] = cell.realized_ps;
        record["realized_ps_poisson"] = cell.realized_ps_poisson;
        record["ratio_static"] = cell.realized_static / cell.analytic;
        record["ratio_ps"] = cell.realized_ps / cell.analytic;
        record["ratio_ps_poisson"] = cell.realized_ps_poisson / cell.analytic;
        record["max_static_device_gap"] = cell.max_static_device_gap;
        record["events_static"] = cell.events_static;
        record["events_ps"] = cell.events_ps;
        record["events_ps_poisson"] = cell.events_ps_poisson;
        record["spillovers_ps"] = cell.spillovers_ps;
        record["spillovers_ps_poisson"] = cell.spillovers_ps_poisson;
        records.push_back(std::move(record));
      }
      doc["records"] = std::move(records);
      const std::string path = args.get("out", "");
      util::write_json_file(path, doc);
      std::cout << "wrote " << path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
