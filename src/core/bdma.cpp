#include "core/bdma.h"

#include <limits>

#include "core/counters.h"
#include "core/latency.h"
#include "core/ropt.h"
#include "core/wcg.h"
#include "util/check.h"
#include "util/trace.h"

namespace eotora::core {

BdmaResult bdma(const Instance& instance, const SlotState& state, double v,
                double q, const BdmaConfig& config, util::Rng& rng) {
  BdmaWorkspace workspace;
  return bdma(instance, state, v, q, config, rng, workspace);
}

BdmaResult bdma(const Instance& instance, const SlotState& state, double v,
                double q, const BdmaConfig& config, util::Rng& rng,
                BdmaWorkspace& workspace) {
  EOTORA_REQUIRE(config.iterations >= 1);
  EOTORA_REQUIRE_MSG(v >= 0.0, "V=" << v);
  EOTORA_REQUIRE_MSG(q >= 0.0, "Q=" << q);

  // Line 1 of Algorithm 2: Ω starts at the lowest feasible frequencies.
  Frequencies omega = instance.min_frequencies();
  WcgProblem& problem = workspace.problem;
  problem.rebuild(instance, state, omega);

  BdmaResult best;
  best.objective = std::numeric_limits<double>::infinity();

  counters::active().bdma_iterations += config.iterations;

  SolveResult previous;  // warm start for iterations > 1
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    EOTORA_TRACE_SPAN("bdma/iteration");
    // rebuild() above already installed Ω^L; only re-derive the compute
    // weights once P2-B has produced new frequencies.
    if (iter > 0) problem.set_frequencies(instance, omega);
    // Line 3: solve P2-A at the current Ω.
    SolveResult p2a;
    switch (config.solver) {
      case P2aSolverKind::kCgba:
        p2a = (iter == 0 || previous.profile.empty())
                  ? cgba(problem, config.cgba, rng)
                  : cgba_from(problem, config.cgba, previous.profile);
        break;
      case P2aSolverKind::kMcba:
        p2a = mcba(problem, config.mcba, rng);
        break;
      case P2aSolverKind::kRopt:
        p2a = ropt(problem, rng);
        break;
    }
    previous = p2a;
    best.p2a_iterations += p2a.iterations;
    const Assignment assignment = problem.to_assignment(p2a.profile);
    // Line 4: solve P2-B at the fixed assignment.
    const P2bResult p2b = solve_p2b(instance, state, assignment, v, q,
                                    config.freq_tolerance);
    best.objective_history.push_back(p2b.objective);
    // Lines 5-8: keep the best pair by the P2 objective.
    if (p2b.objective < best.objective) {
      best.objective = p2b.objective;
      best.assignment = assignment;
      best.frequencies = p2b.frequencies;
    }
    omega = p2b.frequencies;
  }

  best.latency =
      reduced_latency(instance, state, best.assignment, best.frequencies);
  best.theta = instance.theta(best.frequencies, state.price_per_mwh);
  return best;
}

}  // namespace eotora::core
