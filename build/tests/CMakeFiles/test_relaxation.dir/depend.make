# Empty dependencies file for test_relaxation.
# This may be replaced when dependencies are built.
