file(REMOVE_RECURSE
  "libeotora_math.a"
)
