#include "core/counters.h"

#include "util/json.h"

namespace eotora::core::counters {

namespace {
thread_local SolverCounters t_dummy;
thread_local SolverCounters* t_active = nullptr;
}  // namespace

void SolverCounters::merge(const SolverCounters& other) {
  cgba_rounds += other.cgba_rounds;
  cgba_moves += other.cgba_moves;
  mcba_proposals += other.mcba_proposals;
  mcba_accepted += other.mcba_accepted;
  bdma_iterations += other.bdma_iterations;
  engine_rebuilds += other.engine_rebuilds;
  engine_term_refreshes += other.engine_term_refreshes;
  lemma1_evaluations += other.lemma1_evaluations;
  component_finds += other.component_finds;
  component_reuses += other.component_reuses;
  arena_precomputes += other.arena_precomputes;
  arena_precompute_reuses += other.arena_precompute_reuses;
}

bool SolverCounters::operator==(const SolverCounters& other) const {
  return cgba_rounds == other.cgba_rounds && cgba_moves == other.cgba_moves &&
         mcba_proposals == other.mcba_proposals &&
         mcba_accepted == other.mcba_accepted &&
         bdma_iterations == other.bdma_iterations &&
         engine_rebuilds == other.engine_rebuilds &&
         engine_term_refreshes == other.engine_term_refreshes &&
         lemma1_evaluations == other.lemma1_evaluations &&
         component_finds == other.component_finds &&
         component_reuses == other.component_reuses &&
         arena_precomputes == other.arena_precomputes &&
         arena_precompute_reuses == other.arena_precompute_reuses;
}

util::Json SolverCounters::to_json() const {
  // Counter magnitudes stay far below 2^53, so the double-backed Json
  // number type holds them exactly and dumps them as integers.
  util::Json out = util::Json::object();
  out["cgba_rounds"] = cgba_rounds;
  out["cgba_moves"] = cgba_moves;
  out["mcba_proposals"] = mcba_proposals;
  out["mcba_accepted"] = mcba_accepted;
  out["bdma_iterations"] = bdma_iterations;
  out["engine_rebuilds"] = engine_rebuilds;
  out["engine_term_refreshes"] = engine_term_refreshes;
  out["lemma1_evaluations"] = lemma1_evaluations;
  out["component_finds"] = component_finds;
  out["component_reuses"] = component_reuses;
  out["arena_precomputes"] = arena_precomputes;
  out["arena_precompute_reuses"] = arena_precompute_reuses;
  return out;
}

SolverCounters& active() {
  return t_active != nullptr ? *t_active : t_dummy;
}

Scope::Scope(SolverCounters& sink) : previous_(t_active) { t_active = &sink; }

Scope::~Scope() { t_active = previous_; }

}  // namespace eotora::core::counters
