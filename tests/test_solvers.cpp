// MCBA, ROPT, brute force, and branch & bound.
#include <gtest/gtest.h>

#include "core/bnb.h"
#include "core/brute_force.h"
#include "core/cgba.h"
#include "core/mcba.h"
#include "core/ropt.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace eotora::core {
namespace {

TEST(Ropt, ProducesFeasibleProfile) {
  util::Rng rng(1);
  const Instance instance = test::tiny_instance(5);
  const SlotState state = test::random_state(5, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult result = ropt(problem, rng);
  EXPECT_EQ(result.profile.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LT(result.profile[i], problem.options(i).size());
  }
  EXPECT_NEAR(result.cost, problem.total_cost(result.profile), 1e-12);
}

TEST(Ropt, DifferentDrawsDiffer) {
  util::Rng rng(2);
  const Instance instance = test::tiny_instance(8);
  const SlotState state = test::random_state(8, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult a = ropt(problem, rng);
  const SolveResult b = ropt(problem, rng);
  EXPECT_NE(a.profile, b.profile);  // 8 devices x >=3 options: collision ~0
}

TEST(Mcba, ImprovesOverInitialRandomProfile) {
  util::Rng rng(3);
  const Instance instance = test::tiny_instance(8);
  const SlotState state = test::random_state(8, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  // Expected random cost: average of a few draws.
  double random_cost = 0.0;
  for (int i = 0; i < 10; ++i) random_cost += ropt(problem, rng).cost;
  random_cost /= 10.0;
  McbaConfig config;
  config.iterations = 5000;
  const SolveResult result = mcba(problem, config, rng);
  EXPECT_LT(result.cost, random_cost);
}

TEST(Mcba, BestCostNeverWorseThanAnyVisitedAccepted) {
  util::Rng rng(4);
  const Instance instance = test::tiny_instance(5);
  const SlotState state = test::random_state(5, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult result = mcba(problem, McbaConfig{}, rng);
  // The returned profile's cost must match its claimed cost.
  EXPECT_NEAR(result.cost, problem.total_cost(result.profile),
              1e-9 * result.cost);
}

TEST(Mcba, NearOptimalOnTinyInstances) {
  util::Rng rng(5);
  const Instance instance = test::tiny_instance(4);
  const SlotState state = test::random_state(4, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult optimal = brute_force(problem);
  McbaConfig config;
  config.iterations = 20000;
  const SolveResult result = mcba(problem, config, rng);
  EXPECT_LE(result.cost, optimal.cost * 1.25);
}

TEST(Mcba, RejectsBadConfig) {
  util::Rng rng(6);
  const Instance instance = test::tiny_instance(2);
  const SlotState state = test::uniform_state(2, 2);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  McbaConfig config;
  config.iterations = 0;
  EXPECT_THROW((void)mcba(problem, config, rng), std::invalid_argument);
  config = {};
  config.final_temperature_fraction = 1.0;
  config.initial_temperature_fraction = 0.1;
  EXPECT_THROW((void)mcba(problem, config, rng), std::invalid_argument);
}

TEST(BruteForce, FindsHandCheckableOptimum) {
  // One device: optimum is its cheapest singleton option.
  util::Rng rng(7);
  const Instance instance = test::tiny_instance(1);
  const SlotState state = test::random_state(1, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult result = brute_force(problem);
  EXPECT_TRUE(result.optimal);
  EXPECT_NEAR(result.cost, problem.singleton_lower_bound(), 1e-12);
}

TEST(BruteForce, RejectsHugeSearchSpace) {
  util::Rng rng(8);
  const Instance instance = test::tiny_instance(10);
  const SlotState state = test::random_state(10, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  EXPECT_THROW((void)brute_force(problem, 100), std::invalid_argument);
}

class BnbExactness : public ::testing::TestWithParam<int> {};

TEST_P(BnbExactness, MatchesBruteForce) {
  util::Rng rng(700 + GetParam());
  const std::size_t devices = 2 + rng.index(5);  // up to 6 devices
  const Instance instance = test::tiny_instance(devices);
  const SlotState state = test::random_state(devices, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult exact = brute_force(problem);
  const SolveResult bnb = branch_and_bound(problem);
  EXPECT_TRUE(bnb.optimal);
  EXPECT_NEAR(bnb.cost, exact.cost, 1e-9 * exact.cost);
  EXPECT_NEAR(bnb.lower_bound, bnb.cost, 1e-9 * bnb.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbExactness, ::testing::Range(0, 15));

TEST(Bnb, ExploresFarFewerNodesThanBruteForce) {
  util::Rng rng(9);
  const Instance instance = test::tiny_instance(8);
  const SlotState state = test::random_state(8, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult exact = brute_force(problem);
  const SolveResult bnb = branch_and_bound(problem);
  EXPECT_TRUE(bnb.optimal);
  EXPECT_NEAR(bnb.cost, exact.cost, 1e-9 * exact.cost);
  EXPECT_LT(bnb.iterations, exact.iterations / 2);
}

TEST(Bnb, WarmStartHelpsPruning) {
  util::Rng rng(10);
  const Instance instance = test::tiny_instance(9);
  const SlotState state = test::random_state(9, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult cold = branch_and_bound(problem);
  // Warm start with the CGBA equilibrium.
  util::Rng cgba_rng(11);
  const SolveResult warm_source = cgba(problem, CgbaConfig{}, cgba_rng);
  BnbConfig config;
  config.initial_incumbent = warm_source.profile;
  const SolveResult warm = branch_and_bound(problem, config);
  EXPECT_NEAR(warm.cost, cold.cost, 1e-9 * cold.cost);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(Bnb, NodeBudgetDegradesGracefully) {
  util::Rng rng(12);
  const Instance instance = test::tiny_instance(10);
  const SlotState state = test::random_state(10, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  BnbConfig config;
  config.node_budget = 5;
  util::Rng cgba_rng(13);
  config.initial_incumbent = cgba(problem, CgbaConfig{}, cgba_rng).profile;
  const SolveResult result = branch_and_bound(problem, config);
  EXPECT_FALSE(result.optimal);
  EXPECT_FALSE(result.converged);
  // Incumbent and bound bracket the optimum.
  EXPECT_LE(result.lower_bound, result.cost + 1e-9);
  EXPECT_NEAR(result.cost, problem.total_cost(result.profile),
              1e-9 * result.cost);
}

TEST(Bnb, RelativeGapStillNearOptimal) {
  util::Rng rng(14);
  const Instance instance = test::tiny_instance(7);
  const SlotState state = test::random_state(7, 2, rng);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  const SolveResult exact = brute_force(problem);
  BnbConfig config;
  config.relative_gap = 0.05;
  const SolveResult result = branch_and_bound(problem, config);
  EXPECT_FALSE(result.optimal);  // gap > 0 never certifies exact optimality
  EXPECT_LE(result.cost, exact.cost / (1.0 - 0.05) + 1e-9);
}

TEST(Bnb, RejectsBadGap) {
  util::Rng rng(15);
  const Instance instance = test::tiny_instance(2);
  const SlotState state = test::uniform_state(2, 2);
  const WcgProblem problem(instance, state, instance.max_frequencies());
  BnbConfig config;
  config.relative_gap = 1.0;
  EXPECT_THROW((void)branch_and_bound(problem, config),
               std::invalid_argument);
}

// Ranking property that Fig. 4 relies on: CGBA <= MCBA (typically) and both
// beat ROPT on average; B&B is the floor.
TEST(SolverRanking, HoldsOnAverage) {
  util::Rng rng(16);
  double cgba_total = 0.0;
  double mcba_total = 0.0;
  double ropt_total = 0.0;
  double optimal_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t devices = 6;
    const Instance instance = test::tiny_instance(devices);
    const SlotState state = test::random_state(devices, 2, rng);
    const WcgProblem problem(instance, state, instance.max_frequencies());
    cgba_total += cgba(problem, CgbaConfig{}, rng).cost;
    McbaConfig mcba_config;
    mcba_config.iterations = 2000;
    mcba_total += mcba(problem, mcba_config, rng).cost;
    ropt_total += ropt(problem, rng).cost;
    optimal_total += branch_and_bound(problem).cost;
  }
  EXPECT_LE(optimal_total, cgba_total * (1.0 + 1e-9));
  EXPECT_LT(cgba_total, ropt_total);
  EXPECT_LT(mcba_total, ropt_total);
  // CGBA near-optimality (paper: ~1.02x against Gurobi).
  EXPECT_LT(cgba_total, optimal_total * 1.10);
}

}  // namespace
}  // namespace eotora::core
