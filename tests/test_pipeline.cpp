// The pipeline contract:
//  * every registry policy, rebuilt as a PolicyGraph, is bit-identical to
//    the monolithic policy class it replaces (across solvers and seeds);
//  * typed-port mismatches fail at construction with descriptive errors;
//  * the per-stage SolverCounters of a run sum exactly to the run totals;
//  * the AuditTap hook fires once per slot.
#include "sim/pipeline/graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/mpc_policy.h"
#include "sim/pipeline/assemblies.h"
#include "sim/pipeline/stages.h"
#include "sim/policy.h"
#include "sim/policy_params.h"
#include "sim/registry.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace eotora::sim::pipeline {
namespace {

ScenarioConfig tiny(std::uint64_t seed) {
  ScenarioConfig config;
  config.devices = 6;
  config.mid_band_stations = 1;
  config.low_band_stations = 1;
  config.clusters = 1;
  config.servers_per_cluster = 2;
  config.seed = seed;
  return config;
}

PolicyParams fast_params() {
  PolicyParams params;
  params.bdma_iterations = 2;
  params.mcba_iterations = 50;
  params.mpc.period = 4;   // reach the forecasting branch within the run
  params.mpc.window = 4;
  return params;
}

// The monolithic policy class each registry name wraps — the pre-pipeline
// construction path, kept as the differential reference.
std::unique_ptr<Policy> make_monolith(const std::string& name,
                                      const core::Instance& instance,
                                      const PolicyParams& params) {
  if (name == "dpp-bdma") {
    return std::make_unique<DppPolicy>(
        instance, dpp_config_from(params, core::P2aSolverKind::kCgba));
  }
  if (name == "dpp-mcba") {
    return std::make_unique<DppPolicy>(
        instance, dpp_config_from(params, core::P2aSolverKind::kMcba));
  }
  if (name == "dpp-ropt") {
    return std::make_unique<DppPolicy>(
        instance, dpp_config_from(params, core::P2aSolverKind::kRopt));
  }
  if (name == "beta-only") {
    return std::make_unique<BetaOnlyPolicy>(instance,
                                            beta_only_config_from(params));
  }
  if (name == "greedy-budget") {
    return std::make_unique<GreedyBudgetPolicy>(
        instance, baseline_cgba_config_from(params));
  }
  if (name == "fixed-frequency") {
    return std::make_unique<FixedFrequencyPolicy>(
        instance, params.fixed_fraction, baseline_cgba_config_from(params));
  }
  if (name == "fixed-max") {
    return std::make_unique<FixedFrequencyPolicy>(
        instance, 1.0, baseline_cgba_config_from(params));
  }
  if (name == "fixed-min") {
    return std::make_unique<FixedFrequencyPolicy>(
        instance, 0.0, baseline_cgba_config_from(params));
  }
  if (name == "mpc") {
    return std::make_unique<MpcPolicy>(instance, mpc_config_from(params));
  }
  throw std::invalid_argument("no monolith for " + name);
}

// Exact (bitwise, via operator==) equality of every DppSlotResult field.
void expect_identical_slot(const core::DppSlotResult& a,
                           const core::DppSlotResult& b,
                           const std::string& context) {
  EXPECT_EQ(a.decision.assignment.bs_of, b.decision.assignment.bs_of)
      << context;
  EXPECT_EQ(a.decision.assignment.server_of, b.decision.assignment.server_of)
      << context;
  EXPECT_EQ(a.decision.frequencies, b.decision.frequencies) << context;
  EXPECT_EQ(a.decision.allocation.phi, b.decision.allocation.phi) << context;
  EXPECT_EQ(a.decision.allocation.psi_access, b.decision.allocation.psi_access)
      << context;
  EXPECT_EQ(a.decision.allocation.psi_fronthaul,
            b.decision.allocation.psi_fronthaul)
      << context;
  EXPECT_EQ(a.latency, b.latency) << context;
  EXPECT_EQ(a.energy_cost, b.energy_cost) << context;
  EXPECT_EQ(a.theta, b.theta) << context;
  EXPECT_EQ(a.queue_before, b.queue_before) << context;
  EXPECT_EQ(a.queue_after, b.queue_after) << context;
  EXPECT_EQ(a.objective, b.objective) << context;
  EXPECT_EQ(a.p2a_iterations, b.p2a_iterations) << context;
}

TEST(Pipeline, GraphMatchesMonolithBitForBitAcrossPoliciesAndSeeds) {
  const PolicyParams params = fast_params();
  for (const std::uint64_t seed : {11u, 42u, 303u}) {
    Scenario scenario(tiny(seed));
    const auto states = scenario.generate_states(6);
    for (const auto& name : registered_policies()) {
      auto graph = make_policy(name, scenario.instance(), params);
      auto monolith = make_monolith(name, scenario.instance(), params);
      ASSERT_EQ(graph->name(), monolith->name()) << name;
      graph->reset();
      monolith->reset();
      util::Rng graph_rng(1 + seed);
      util::Rng monolith_rng(1 + seed);
      for (std::size_t t = 0; t < states.size(); ++t) {
        const auto a = graph->step(states[t], graph_rng);
        const auto b = monolith->step(states[t], monolith_rng);
        expect_identical_slot(
            a, b, name + " seed=" + std::to_string(seed) +
                      " slot=" + std::to_string(t));
      }
    }
  }
}

TEST(Pipeline, ResetRestartsTheGraphExactly) {
  Scenario scenario(tiny(7));
  const auto states = scenario.generate_states(4);
  auto policy = make_policy("dpp-bdma", scenario.instance(), fast_params());
  const auto first = run_policy(*policy, states, 3);
  const auto second = run_policy(*policy, states, 3);  // reset() inside
  EXPECT_EQ(first.metrics.average_latency(), second.metrics.average_latency());
  EXPECT_EQ(first.counters, second.counters);
}

TEST(Pipeline, StageCountersSumExactlyToRunTotals) {
  Scenario scenario(tiny(5));
  const auto states = scenario.generate_states(5);
  const PolicyParams params = fast_params();
  for (const auto& name : registered_policies()) {
    auto policy = make_policy(name, scenario.instance(), params);
    const auto result = run_policy(*policy, states, 2);
    ASSERT_FALSE(result.stages.empty()) << name;
    core::counters::SolverCounters sum;
    for (const auto& stage : result.stages) sum.merge(stage.counters);
    EXPECT_EQ(sum, result.counters) << name;
  }
}

TEST(Pipeline, LoopStagesRunOncePerBdmaIterationPerSlot) {
  Scenario scenario(tiny(5));
  const auto states = scenario.generate_states(5);
  PolicyParams params = fast_params();
  params.bdma_iterations = 3;
  auto policy = make_policy("dpp-bdma", scenario.instance(), params);
  const auto result = run_policy(*policy, states, 2);
  for (const auto& stage : result.stages) {
    const bool in_loop = stage.name == "p2a_solve" || stage.name == "p2b_solve";
    const std::uint64_t expected =
        states.size() * (in_loop ? params.bdma_iterations : 1);
    EXPECT_EQ(stage.runs, expected) << stage.name;
  }
}

TEST(Pipeline, AuditTapFiresOncePerSlot) {
  Scenario scenario(tiny(9));
  const auto states = scenario.generate_states(4);
  auto policy = make_policy("greedy-budget", scenario.instance());
  auto* graph = dynamic_cast<PolicyGraph*>(policy.get());
  ASSERT_NE(graph, nullptr);
  auto* tap_stage = dynamic_cast<AuditTapStage*>(graph->find_stage("audit_tap"));
  ASSERT_NE(tap_stage, nullptr);
  std::size_t taps = 0;
  tap_stage->set_tap([&](const StageContext& ctx) {
    ++taps;
    EXPECT_NE(ctx.state, nullptr);
    EXPECT_FALSE(ctx.frequencies.empty());
  });
  util::Rng rng(1);
  for (const auto& state : states) (void)policy->step(state, rng);
  EXPECT_EQ(taps, states.size());
}

// ---- Typed-port validation ------------------------------------------------

// A configurable mock stage for exercising the construction-time checks.
class MockStage final : public Stage {
 public:
  MockStage(const char* name, std::vector<PortSpec> inputs,
            std::vector<PortSpec> outputs)
      : name_(name), inputs_(std::move(inputs)), outputs_(std::move(outputs)) {}

  [[nodiscard]] const char* name() const override { return name_; }
  [[nodiscard]] const char* span_name() const override { return "stage/mock"; }
  [[nodiscard]] std::vector<PortSpec> inputs() const override {
    return inputs_;
  }
  [[nodiscard]] std::vector<PortSpec> outputs() const override {
    return outputs_;
  }
  void run(StageContext&) override {}

 private:
  const char* name_;
  std::vector<PortSpec> inputs_;
  std::vector<PortSpec> outputs_;
};

std::string construction_error(std::vector<std::unique_ptr<Stage>> stages,
                               const core::Instance& instance,
                               LoopSpec loop = {}) {
  try {
    PolicyGraph graph("test-graph", instance, std::move(stages), loop);
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(Pipeline, MissingInputPortFailsConstructionDescriptively) {
  Scenario scenario(tiny(3));
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<MockStage>(
      "producer", std::vector<PortSpec>{},
      std::vector<PortSpec>{{"queue", PortType::kQueue}}));
  stages.push_back(std::make_unique<MockStage>(
      "consumer",
      std::vector<PortSpec>{{"frequencies", PortType::kFrequencies}},
      std::vector<PortSpec>{}));
  const std::string message =
      construction_error(std::move(stages), scenario.instance());
  // Names the graph, the failing stage, the missing port, and what exists.
  EXPECT_NE(message.find("test-graph"), std::string::npos) << message;
  EXPECT_NE(message.find("consumer"), std::string::npos) << message;
  EXPECT_NE(message.find("frequencies"), std::string::npos) << message;
  EXPECT_NE(message.find("not produced"), std::string::npos) << message;
  EXPECT_NE(message.find("queue (Queue)"), std::string::npos) << message;
}

TEST(Pipeline, TypeMismatchFailsConstructionDescriptively) {
  Scenario scenario(tiny(3));
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<MockStage>(
      "producer", std::vector<PortSpec>{},
      std::vector<PortSpec>{{"payload", PortType::kQueue}}));
  stages.push_back(std::make_unique<MockStage>(
      "consumer", std::vector<PortSpec>{{"payload", PortType::kFrequencies}},
      std::vector<PortSpec>{}));
  const std::string message =
      construction_error(std::move(stages), scenario.instance());
  EXPECT_NE(message.find("consumer"), std::string::npos) << message;
  EXPECT_NE(message.find("payload"), std::string::npos) << message;
  EXPECT_NE(message.find("mismatched type"), std::string::npos) << message;
  EXPECT_NE(message.find("Queue"), std::string::npos) << message;
  EXPECT_NE(message.find("Frequencies"), std::string::npos) << message;
}

TEST(Pipeline, OrderMattersOutsideTheLoopRegion) {
  // The same two stages connect fine producer-first and fail consumer-first
  // (no loop region to carry the dependency backwards).
  Scenario scenario(tiny(3));
  auto producer = [] {
    return std::make_unique<MockStage>(
        "producer", std::vector<PortSpec>{},
        std::vector<PortSpec>{{"queue", PortType::kQueue}});
  };
  auto consumer = [] {
    return std::make_unique<MockStage>(
        "consumer", std::vector<PortSpec>{{"queue", PortType::kQueue}},
        std::vector<PortSpec>{});
  };
  std::vector<std::unique_ptr<Stage>> good;
  good.push_back(producer());
  good.push_back(consumer());
  EXPECT_NO_THROW(PolicyGraph("test-graph", scenario.instance(),
                              std::move(good)));
  std::vector<std::unique_ptr<Stage>> bad;
  bad.push_back(consumer());
  bad.push_back(producer());
  EXPECT_FALSE(
      construction_error(std::move(bad), scenario.instance()).empty());
}

TEST(Pipeline, LoopRegionAllowsLoopCarriedDependencies) {
  // Inside [first, last] a later stage may feed an earlier one (P2-B's Ω
  // into the next P2-A pass); the identical wiring fails without the loop.
  Scenario scenario(tiny(3));
  auto forward = [] {
    return std::make_unique<MockStage>(
        "forward", std::vector<PortSpec>{{"omega", PortType::kFrequencies}},
        std::vector<PortSpec>{{"plan", PortType::kAssignment}});
  };
  auto backward = [] {
    return std::make_unique<MockStage>(
        "backward", std::vector<PortSpec>{{"plan", PortType::kAssignment}},
        std::vector<PortSpec>{{"omega", PortType::kFrequencies}});
  };
  LoopSpec loop;
  loop.first = 0;
  loop.last = 1;
  loop.iterations = 2;
  std::vector<std::unique_ptr<Stage>> looped;
  looped.push_back(forward());
  looped.push_back(backward());
  EXPECT_NO_THROW(PolicyGraph("test-graph", scenario.instance(),
                              std::move(looped), loop));
  std::vector<std::unique_ptr<Stage>> straight;
  straight.push_back(forward());
  straight.push_back(backward());
  EXPECT_FALSE(
      construction_error(std::move(straight), scenario.instance()).empty());
}

TEST(Pipeline, OutOfRangeLoopRegionFailsConstruction) {
  Scenario scenario(tiny(3));
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<MockStage>(
      "only", std::vector<PortSpec>{}, std::vector<PortSpec>{}));
  LoopSpec loop;
  loop.first = 0;
  loop.last = 5;
  loop.iterations = 2;
  const std::string message =
      construction_error(std::move(stages), scenario.instance(), loop);
  EXPECT_NE(message.find("loop region"), std::string::npos) << message;
}

}  // namespace
}  // namespace eotora::sim::pipeline
