#include "core/cgba.h"

#include <cstdint>
#include <utility>

#include "core/counters.h"
#include "util/check.h"

namespace eotora::core {

namespace {

// The best-response dynamics shared by the cached (BestResponseEngine) and
// naive (full LoadTracker rescan) paths. Both paths feed it best responses
// with identical bits — the engine's cache invariant guarantees
// engine.best_response(i) == tracker.best_response(i) bitwise — so the two
// modes take identical move sequences and land on identical profiles and
// costs. `best_response(i)` must return LoadTracker::BestResponse; `move(i,
// o)` must apply the move to the tracker (and, in cached mode, invalidate).
template <typename BestResponseFn, typename MoveFn>
SolveResult run_cgba(const CgbaConfig& config, LoadTracker& tracker,
                     std::size_t devices, BestResponseFn&& best_response,
                     MoveFn&& move) {
  SolveResult result;
  result.converged = false;
  // Rounds = full best-response passes (round-robin sweeps or max-gap
  // argmax scans); moves = responses that changed an option. Accumulated
  // locally and flushed once so the hot loop touches no TLS.
  std::uint64_t rounds = 0;

  if (config.selection == CgbaSelection::kRoundRobin) {
    // Sweep players in index order until one full pass makes no move.
    bool any_moved = true;
    while (any_moved && result.iterations < config.max_moves) {
      any_moved = false;
      ++rounds;
      for (std::size_t i = 0; i < devices; ++i) {
        const LoadTracker::BestResponse br = best_response(i);
        const double threshold = (1.0 - config.lambda) * br.current_cost -
                                 config.rel_epsilon * br.current_cost;
        if (br.cost < threshold) {
          move(i, br.option_index);
          ++result.iterations;
          any_moved = true;
          if (result.iterations >= config.max_moves) break;
        }
      }
    }
    result.converged = !any_moved;
    result.profile = tracker.profile();
    result.cost = tracker.total_cost();
    counters::active().cgba_rounds += rounds;
    counters::active().cgba_moves += result.iterations;
    return result;
  }

  for (std::size_t moves = 0; moves < config.max_moves; ++moves) {
    ++rounds;
    // Line 3 of Algorithm 3: the player with the largest improvement.
    std::size_t best_device = devices;  // sentinel: nobody wants to move
    std::size_t best_option = 0;
    double best_gap = 0.0;
    for (std::size_t i = 0; i < devices; ++i) {
      const LoadTracker::BestResponse br = best_response(i);
      // Termination test (line 2): move only when
      // (1 - λ) * T_i  >  min_z T_i, with a relative floor against FP noise.
      const double threshold = (1.0 - config.lambda) * br.current_cost -
                               config.rel_epsilon * br.current_cost;
      if (br.cost >= threshold) continue;
      const double gap = br.current_cost - br.cost;
      if (gap > best_gap) {
        best_gap = gap;
        best_device = i;
        best_option = br.option_index;
      }
    }
    if (best_device == devices) {
      result.converged = true;
      break;
    }
    move(best_device, best_option);
    ++result.iterations;
  }
  // If the cap was hit without reaching equilibrium we still return the best
  // profile found; callers can inspect `converged`.
  result.profile = tracker.profile();
  result.cost = tracker.total_cost();
  counters::active().cgba_rounds += rounds;
  counters::active().cgba_moves += result.iterations;
  return result;
}

}  // namespace

SolveResult cgba(const WcgProblem& problem, const CgbaConfig& config,
                 util::Rng& rng) {
  return cgba_from(problem, config, problem.random_profile(rng));
}

SolveResult cgba_from(const WcgProblem& problem, const CgbaConfig& config,
                      Profile initial, std::vector<double>* final_loads) {
  EOTORA_REQUIRE_MSG(config.lambda >= 0.0 && config.lambda < 0.125,
                     "lambda=" << config.lambda);
  EOTORA_REQUIRE(config.max_moves > 0);
  LoadTracker tracker(problem, std::move(initial));
  const std::size_t devices = problem.num_devices();

  SolveResult result;
  if (config.naive_scan) {
    result = run_cgba(
        config, tracker, devices,
        [&](std::size_t i) { return tracker.best_response(i); },
        [&](std::size_t i, std::size_t o) { tracker.move(i, o); });
  } else {
    BestResponseEngine engine(tracker);
    result = run_cgba(
        config, tracker, devices,
        [&](std::size_t i) { return engine.best_response(i); },
        [&](std::size_t i, std::size_t o) { engine.move(i, o); });
    counters::active().engine_rebuilds += 1;
    counters::active().engine_term_refreshes += engine.term_refreshes();
  }
  if (final_loads != nullptr) {
    final_loads->assign(tracker.loads().begin(), tracker.loads().end());
  }
  return result;
}

}  // namespace eotora::core
