// Fractional relaxation of P2-A with a certified lower bound.
//
// Relax each device's one-hot option choice to a point in the simplex over
// its options; the social cost  Σ_r m_r P_r(w)²  is convex in w, so the
// relaxed optimum lower-bounds the integer optimum. We solve it with
// Frank-Wolfe (conditional gradient): the linear subproblem separates per
// device (pick the option with the smallest inner product against the
// gradient), the exact line search is closed-form because the objective is
// quadratic along a segment, and the Frank-Wolfe duality gap
//   g(w) = <∇f(w), w - v(w)>
// certifies  f(w) - g(w) <= f(w*) <= integer optimum, giving a TRUE lower
// bound even before convergence. This is how the benches judge solution
// quality at paper scale, where branch & bound cannot certify optimality.
#pragma once

#include "core/wcg.h"

namespace eotora::core {

struct RelaxationResult {
  double fractional_value = 0.0;  // f(w): feasible fractional objective
  double lower_bound = 0.0;       // f(w) - gap: certified bound on OPT
  int iterations = 0;
  // w[i][o]: device i's weight on its option o.
  std::vector<std::vector<double>> weights;
};

struct RelaxationConfig {
  int max_iterations = 500;
  // Stop when the duality gap falls below this fraction of the value.
  double relative_gap = 1e-4;
};

[[nodiscard]] RelaxationResult fractional_lower_bound(
    const WcgProblem& problem, const RelaxationConfig& config = {});

}  // namespace eotora::core
