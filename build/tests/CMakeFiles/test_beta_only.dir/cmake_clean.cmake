file(REMOVE_RECURSE
  "CMakeFiles/test_beta_only.dir/test_beta_only.cpp.o"
  "CMakeFiles/test_beta_only.dir/test_beta_only.cpp.o.d"
  "test_beta_only"
  "test_beta_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beta_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
