#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# paper figure and every ablation, and collect the outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done
echo "outputs written to results/"
