// Shared setup for the figure-reproduction benches: paper-scenario problem
// instances at a chosen device count.
#pragma once

#include <memory>

#include "eotora/eotora.h"

namespace eotora::bench {

struct P2aCase {
  std::unique_ptr<sim::Scenario> scenario;
  core::SlotState state;
};

// A paper-settings scenario with `devices` MDs and one drawn slot state.
// The first `warmup_slots` states are discarded so the returned state is
// past the generators' initial transient (mobility has dispersed from the
// uniform draw, channels have decorrelated, and the price/workload traces
// are off their deterministic first sample); only state warmup_slots + 1
// is kept. The default matches the seed benches' historical draw depth.
inline P2aCase make_p2a_case(std::size_t devices, std::uint64_t seed,
                             std::size_t warmup_slots = 4) {
  sim::ScenarioConfig config;
  config.devices = devices;
  config.seed = seed;
  P2aCase c;
  c.scenario = std::make_unique<sim::Scenario>(config);
  for (std::size_t skipped = 0; skipped < warmup_slots; ++skipped) {
    (void)c.scenario->next_state();
  }
  c.state = c.scenario->next_state();
  return c;
}

}  // namespace eotora::bench
