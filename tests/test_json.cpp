#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <type_traits>

namespace eotora::util {
namespace {

TEST(Json, DefaultIsNull) {
  Json value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(42).dump(), "42");
}

TEST(Json, TypedAccessorsRejectMismatch) {
  EXPECT_THROW((void)Json(1.0).as_string(), std::invalid_argument);
  EXPECT_THROW((void)Json("x").as_number(), std::invalid_argument);
  EXPECT_THROW((void)Json(true).as_string(), std::invalid_argument);
  EXPECT_THROW((void)Json(1.0).at(0), std::invalid_argument);
  EXPECT_THROW((void)Json(1.0).at("k"), std::invalid_argument);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json object = Json::object();
  object["zebra"] = 1;
  object["alpha"] = 2;
  object["mid"] = 3;
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  EXPECT_TRUE(object.contains("mid"));
  EXPECT_FALSE(object.contains("missing"));
  EXPECT_TRUE(object.erase("alpha"));
  EXPECT_FALSE(object.erase("alpha"));
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"mid\":3}");
}

TEST(Json, NestedValuesRoundTrip) {
  Json doc = Json::object();
  doc["name"] = "sweep";
  doc["count"] = 3;
  Json record = Json::object();
  record["policy"] = "dpp-bdma";
  record["latency"] = 7.652;
  record["flags"] = Json::array();
  Json records = Json::array();
  records.push_back(record);
  records.push_back(Json());
  doc["records"] = records;

  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  EXPECT_EQ(reparsed.at("records").at(0).at("policy").as_string(),
            "dpp-bdma");
  // Pretty printing parses back to the same value.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, EscapingRoundTrips) {
  const std::string nasty =
      "quote \" backslash \\ newline \n tab \t bell \x07 slash /";
  const Json value(nasty);
  const std::string dumped = value.dump();
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\\\"), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0007"), std::string::npos);
  EXPECT_EQ(Json::parse(dumped).as_string(), nasty);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\u00e9");
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(), "\u20ac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\U0001F600");
  EXPECT_THROW((void)Json::parse("\"\\ud83d\""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"\\ude00\""), std::invalid_argument);
}

TEST(Json, NumberFormattingRoundTrips) {
  for (const double value :
       {0.0, -0.0, 1.0, -1.0, 0.85, 1.0 / 3.0, 6.02e23, 1e-300,
        123456789.123456789, std::numeric_limits<double>::max(),
        std::numeric_limits<double>::denorm_min(), 7.652}) {
    const std::string text = format_json_number(value);
    const Json reparsed = Json::parse(text);
    ASSERT_TRUE(reparsed.is_number()) << text;
    EXPECT_EQ(reparsed.as_number(), value) << text;
  }
  // Shortest form: integral doubles have no decimal point.
  EXPECT_EQ(format_json_number(288.0), "288");
  EXPECT_EQ(format_json_number(0.85), "0.85");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1} trailing", "[1 2]", "nul", "\"bad \\x escape\"",
        "01a", "-", "[1,2,]", "{\"a\" 1}"}) {
    EXPECT_THROW((void)Json::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, ParserRejectsLeadingZeros) {
  // RFC 8259: a multi-digit integer part must not start with '0'.
  for (const char* bad : {"0123", "-012", "00", "[01]", "{\"a\":007}"}) {
    EXPECT_THROW((void)Json::parse(bad), std::invalid_argument) << bad;
  }
  EXPECT_EQ(Json::parse("0").as_number(), 0.0);
  EXPECT_EQ(Json::parse("-0.5").as_number(), -0.5);
  EXPECT_EQ(Json::parse("10").as_number(), 10.0);
  EXPECT_EQ(Json::parse("0e3").as_number(), 0.0);
  EXPECT_EQ(Json::parse("0.125").as_number(), 0.125);
}

TEST(Json, NonStringPointersDoNotConstruct) {
  // Guards against `doc["x"] = some_ptr` compiling via the bool constructor
  // and silently storing `true`.
  static_assert(!std::is_constructible_v<Json, int*>);
  static_assert(!std::is_constructible_v<Json, void*>);
  static_assert(!std::is_constructible_v<Json, const double*>);
  static_assert(std::is_constructible_v<Json, const char*>);
  static_assert(std::is_constructible_v<Json, char*>);
  static_assert(std::is_constructible_v<Json, bool>);
}

TEST(Json, ParserAcceptsWhitespaceAndNesting) {
  const Json value = Json::parse(
      " { \"a\" : [ 1 , 2.5e1 , { \"b\" : null } ] , \"c\" : false } ");
  EXPECT_EQ(value.at("a").at(1).as_number(), 25.0);
  EXPECT_TRUE(value.at("a").at(2).at("b").is_null());
  EXPECT_FALSE(value.at("c").as_bool());
}

TEST(Json, PrettyPrintShape) {
  Json doc = Json::object();
  doc["a"] = 1;
  Json inner = Json::array();
  inner.push_back(2);
  doc["b"] = inner;
  EXPECT_EQ(doc.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  EXPECT_EQ(Json::object().dump(2), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, WriteJsonFile) {
  const std::string path = "/tmp/eotora_test_json_write.json";
  Json doc = Json::object();
  doc["ok"] = true;
  write_json_file(path, doc);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(Json::parse(text), doc);
  std::remove(path.c_str());
  EXPECT_THROW(write_json_file("/nonexistent-dir/x.json", doc),
               std::runtime_error);
}

}  // namespace
}  // namespace eotora::util
