#include "sim/golden.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/policy.h"
#include "sim/scenario_registry.h"
#include "sim/state_source.h"
#include "util/json.h"
#include "util/rng.h"

namespace eotora::sim {
namespace {

constexpr const char* kGoldenSchema = "eotora-golden-v1";

// Strict typed field extraction for from_json.
const util::Json& require_field(const util::Json& doc, const std::string& key) {
  if (!doc.is_object() || !doc.contains(key)) {
    throw std::invalid_argument("golden trace: missing field \"" + key + "\"");
  }
  return doc.at(key);
}

std::string require_string(const util::Json& doc, const std::string& key) {
  const util::Json& value = require_field(doc, key);
  if (!value.is_string()) {
    throw std::invalid_argument("golden trace: field \"" + key +
                                "\" must be a string");
  }
  return value.as_string();
}

double require_number(const util::Json& doc, const std::string& key) {
  const util::Json& value = require_field(doc, key);
  if (!value.is_number()) {
    throw std::invalid_argument("golden trace: field \"" + key +
                                "\" must be a number");
  }
  return value.as_number();
}

std::size_t require_size(const util::Json& doc, const std::string& key) {
  double raw = require_number(doc, key);
  if (raw < 0.0) {
    throw std::invalid_argument("golden trace: field \"" + key +
                                "\" must be non-negative");
  }
  return static_cast<std::size_t>(raw);
}

const util::Json& require_array(const util::Json& doc, const std::string& key) {
  const util::Json& value = require_field(doc, key);
  if (!value.is_array()) {
    throw std::invalid_argument("golden trace: field \"" + key +
                                "\" must be an array");
  }
  return value;
}

std::string render(double value) { return util::format_json_number(value); }
std::string render(std::size_t value) { return std::to_string(value); }

}  // namespace

const std::vector<GoldenScenario>& golden_scenarios() {
  static const std::vector<GoldenScenario> scenarios = [] {
    std::vector<GoldenScenario> list;

    // tiny-a: smallest default-shaped world — random-waypoint mobility,
    // unit budget.
    {
      GoldenScenario gs;
      gs.name = "tiny-a";
      gs.config.devices = 8;
      gs.config.mid_band_stations = 2;
      gs.config.low_band_stations = 1;
      gs.config.clusters = 1;
      gs.config.servers_per_cluster = 2;
      gs.config.seed = 11;
      gs.horizon = 16;
      list.push_back(gs);
    }

    // tiny-b: two clusters, Gauss-Markov mobility, tight budget — stresses
    // the queue ledger (theta is frequently positive).
    {
      GoldenScenario gs;
      gs.name = "tiny-b";
      gs.config.devices = 12;
      gs.config.mid_band_stations = 3;
      gs.config.low_band_stations = 2;
      gs.config.clusters = 2;
      gs.config.servers_per_cluster = 2;
      gs.config.budget_per_slot = 0.5;
      gs.config.mobility = ScenarioConfig::Mobility::kGaussMarkov;
      gs.config.seed = 22;
      gs.horizon = 16;
      list.push_back(gs);
    }

    // tiny-c: strongly trended workloads and a loose budget — the queue
    // mostly drains, exercising the max{., 0} clamp in Eq. (21).
    {
      GoldenScenario gs;
      gs.name = "tiny-c";
      gs.config.devices = 6;
      gs.config.mid_band_stations = 3;
      gs.config.low_band_stations = 1;
      gs.config.clusters = 1;
      gs.config.servers_per_cluster = 3;
      gs.config.budget_per_slot = 2.0;
      gs.config.workload_trend_weight = 0.8;
      gs.config.seed = 33;
      gs.horizon = 12;
      list.push_back(gs);
    }

    return list;
  }();
  return scenarios;
}

const std::vector<std::string>& golden_policies() {
  static const std::vector<std::string> policies = {
      "dpp-bdma", "dpp-mcba", "dpp-ropt", "beta-only"};
  return policies;
}

const std::vector<GoldenScenario>& golden_preset_scenarios() {
  static const std::vector<GoldenScenario> scenarios = [] {
    std::vector<GoldenScenario> list;
    // One tiny-a-shaped world per non-paper preset, each with its own seed
    // so the fixtures exercise genuinely different draws. The fixture name
    // IS the preset name.
    std::uint64_t seed = 44;
    for (const std::string& preset : registered_scenarios()) {
      if (preset == "paper") continue;  // identical to the tiny-* fixtures
      GoldenScenario gs;
      gs.name = preset;
      gs.config.devices = 8;
      gs.config.mid_band_stations = 2;
      gs.config.low_band_stations = 1;
      gs.config.clusters = 1;
      gs.config.servers_per_cluster = 2;
      gs.config.seed = seed;
      seed += 11;
      gs.horizon = 16;
      apply_scenario_preset(preset, gs.config);
      list.push_back(gs);
    }
    return list;
  }();
  return scenarios;
}

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = [] {
    std::vector<GoldenCase> list;
    for (const GoldenScenario& gs : golden_scenarios()) {
      for (const std::string& policy : golden_policies()) {
        list.push_back(GoldenCase{&gs, policy});
      }
    }
    for (const GoldenScenario& gs : golden_preset_scenarios()) {
      list.push_back(GoldenCase{&gs, "dpp-bdma"});
    }
    return list;
  }();
  return cases;
}

const PolicyParams& golden_policy_params() {
  static const PolicyParams params{};
  return params;
}

double round_sig(double value, int digits) {
  if (value == 0.0) {
    return 0.0;  // normalizes -0.0 too
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return std::strtod(buffer, nullptr);
}

util::Json GoldenTrace::to_json() const {
  util::Json doc = util::Json::object();
  doc["schema"] = kGoldenSchema;
  doc["scenario"] = scenario;
  doc["policy"] = policy;
  doc["devices"] = devices;
  doc["horizon"] = horizon;
  doc["seed"] = static_cast<unsigned long long>(seed);
  util::Json slot_array = util::Json::array();
  for (const GoldenSlot& slot : slots) {
    util::Json record = util::Json::object();
    record["slot"] = slot.slot;
    util::Json bs = util::Json::array();
    for (std::size_t b : slot.bs_of) bs.push_back(b);
    record["bs"] = std::move(bs);
    util::Json server = util::Json::array();
    for (std::size_t s : slot.server_of) server.push_back(s);
    record["server"] = std::move(server);
    util::Json freq = util::Json::array();
    for (double f : slot.frequencies) freq.push_back(f);
    record["freq"] = std::move(freq);
    record["latency"] = slot.latency;
    record["energy_cost"] = slot.energy_cost;
    record["theta"] = slot.theta;
    record["queue_after"] = slot.queue_after;
    slot_array.push_back(std::move(record));
  }
  doc["slots"] = std::move(slot_array);
  return doc;
}

GoldenTrace GoldenTrace::from_json(const util::Json& doc) {
  const std::string schema = require_string(doc, "schema");
  if (schema != kGoldenSchema) {
    throw std::invalid_argument("golden trace: unsupported schema \"" +
                                schema + "\" (expected " + kGoldenSchema +
                                ")");
  }
  GoldenTrace trace;
  trace.scenario = require_string(doc, "scenario");
  trace.policy = require_string(doc, "policy");
  trace.devices = require_size(doc, "devices");
  trace.horizon = require_size(doc, "horizon");
  trace.seed = static_cast<std::uint64_t>(require_number(doc, "seed"));
  const util::Json& slot_array = require_array(doc, "slots");
  trace.slots.reserve(slot_array.size());
  for (std::size_t i = 0; i < slot_array.size(); ++i) {
    const util::Json& record = slot_array.at(i);
    GoldenSlot slot;
    slot.slot = require_size(record, "slot");
    const util::Json& bs = require_array(record, "bs");
    const util::Json& server = require_array(record, "server");
    const util::Json& freq = require_array(record, "freq");
    for (std::size_t k = 0; k < bs.size(); ++k) {
      slot.bs_of.push_back(static_cast<std::size_t>(bs.at(k).as_number()));
    }
    for (std::size_t k = 0; k < server.size(); ++k) {
      slot.server_of.push_back(
          static_cast<std::size_t>(server.at(k).as_number()));
    }
    for (std::size_t k = 0; k < freq.size(); ++k) {
      slot.frequencies.push_back(freq.at(k).as_number());
    }
    slot.latency = require_number(record, "latency");
    slot.energy_cost = require_number(record, "energy_cost");
    slot.theta = require_number(record, "theta");
    slot.queue_after = require_number(record, "queue_after");
    trace.slots.push_back(std::move(slot));
  }
  return trace;
}

std::string GoldenDivergence::describe() const {
  if (identical) {
    return "traces identical";
  }
  std::ostringstream out;
  if (slot == kNoSlot) {
    out << "header field \"" << field << "\"";
  } else {
    out << "slot " << slot << ", field \"" << field << "\"";
  }
  out << ": expected " << expected << ", got " << actual;
  return out.str();
}

namespace {

// Records the first divergence; further set() calls are no-ops.
struct DivergenceBuilder {
  GoldenDivergence div;

  template <typename T>
  bool set(std::size_t slot, const std::string& field, const T& expected,
           const T& actual) {
    if (expected == actual || !div.identical) {
      return !div.identical;
    }
    div.identical = false;
    div.slot = slot;
    div.field = field;
    div.expected = render(expected);
    div.actual = render(actual);
    return true;
  }

  bool set_header(const std::string& field, const std::string& expected,
                  const std::string& actual) {
    if (expected == actual || !div.identical) {
      return !div.identical;
    }
    div.identical = false;
    div.slot = GoldenDivergence::kNoSlot;
    div.field = field;
    div.expected = expected;
    div.actual = actual;
    return true;
  }
};

}  // namespace

GoldenDivergence diff_golden(const GoldenTrace& expected,
                             const GoldenTrace& actual) {
  DivergenceBuilder b;
  if (b.set_header("scenario", expected.scenario, actual.scenario) ||
      b.set_header("policy", expected.policy, actual.policy) ||
      b.set_header("devices", render(expected.devices),
                   render(actual.devices)) ||
      b.set_header("horizon", render(expected.horizon),
                   render(actual.horizon)) ||
      b.set_header("seed", std::to_string(expected.seed),
                   std::to_string(actual.seed)) ||
      b.set_header("slots.size", render(expected.slots.size()),
                   render(actual.slots.size()))) {
    return b.div;
  }
  for (std::size_t t = 0; t < expected.slots.size(); ++t) {
    const GoldenSlot& e = expected.slots[t];
    const GoldenSlot& a = actual.slots[t];
    if (b.set(t, "slot", e.slot, a.slot)) return b.div;
    if (b.set(t, "bs.size", e.bs_of.size(), a.bs_of.size())) return b.div;
    if (b.set(t, "server.size", e.server_of.size(), a.server_of.size())) {
      return b.div;
    }
    if (b.set(t, "freq.size", e.frequencies.size(), a.frequencies.size())) {
      return b.div;
    }
    for (std::size_t i = 0; i < e.bs_of.size(); ++i) {
      if (b.set(t, "bs[" + std::to_string(i) + "]", e.bs_of[i], a.bs_of[i])) {
        return b.div;
      }
    }
    for (std::size_t i = 0; i < e.server_of.size(); ++i) {
      if (b.set(t, "server[" + std::to_string(i) + "]", e.server_of[i],
                a.server_of[i])) {
        return b.div;
      }
    }
    for (std::size_t i = 0; i < e.frequencies.size(); ++i) {
      if (b.set(t, "freq[" + std::to_string(i) + "]", e.frequencies[i],
                a.frequencies[i])) {
        return b.div;
      }
    }
    if (b.set(t, "latency", e.latency, a.latency)) return b.div;
    if (b.set(t, "energy_cost", e.energy_cost, a.energy_cost)) return b.div;
    if (b.set(t, "theta", e.theta, a.theta)) return b.div;
    if (b.set(t, "queue_after", e.queue_after, a.queue_after)) return b.div;
  }
  return b.div;
}

GoldenTrace record_golden_trace(const GoldenScenario& scenario,
                                const std::string& policy_name) {
  // Stream states slot by slot (same RNG draws as generate_states, so
  // recorded fixtures are byte-identical to the materialized era).
  ScenarioSource source(scenario.config, scenario.horizon);

  std::unique_ptr<Policy> policy =
      make_policy(policy_name, source.instance(), golden_policy_params());

  AuditConfig audit_config;
  audit_config.mode = AuditMode::kEverySlot;
  audit_config.check_queue = policy_tracks_queue(policy_name);
  SlotAuditor auditor(source.instance(), audit_config);

  GoldenTrace trace;
  trace.scenario = scenario.name;
  trace.policy = policy_name;
  trace.devices = scenario.config.devices;
  trace.horizon = scenario.horizon;
  trace.seed = scenario.config.seed;

  // Same per-run seed the simulator uses for replication 0 — a golden
  // trace must match a Simulator::run_policy run on the same states.
  util::Rng rng(1);
  core::SlotState state;
  for (std::size_t t = 0; source.next(state); ++t) {
    const core::DppSlotResult result = policy->step(state, rng);
    auditor.observe(state, result);

    GoldenSlot slot;
    slot.slot = t;
    slot.bs_of = result.decision.assignment.bs_of;
    slot.server_of = result.decision.assignment.server_of;
    slot.frequencies.reserve(result.decision.frequencies.size());
    for (double f : result.decision.frequencies) {
      slot.frequencies.push_back(round_sig(f));
    }
    slot.latency = round_sig(result.latency);
    slot.energy_cost = round_sig(result.energy_cost);
    slot.theta = round_sig(result.theta);
    slot.queue_after = round_sig(result.queue_after);
    trace.slots.push_back(std::move(slot));
  }

  if (!auditor.report().clean()) {
    throw std::runtime_error("golden trace " + scenario.name + "." +
                             policy_name + " is not audit-clean: " +
                             auditor.report().summary());
  }
  return trace;
}

std::string golden_fixture_filename(const std::string& scenario,
                                    const std::string& policy) {
  return scenario + "." + policy + ".json";
}

GoldenTrace load_golden_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open golden fixture: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return GoldenTrace::from_json(util::Json::parse(buffer.str()));
}

void write_golden_file(const std::string& path, const GoldenTrace& trace) {
  util::write_json_file(path, trace.to_json(), 1);
}

}  // namespace eotora::sim
