// Integration tests: scenario factory, state generation, policies, and the
// full simulation loop on a (reduced) paper scenario.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/policy.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace eotora::sim {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 3) {
  ScenarioConfig config;
  config.devices = 12;
  config.mid_band_stations = 3;
  config.low_band_stations = 2;
  config.clusters = 2;
  config.servers_per_cluster = 3;
  config.seed = seed;
  config.budget_per_slot = 0.8;
  return config;
}

TEST(Scenario, BuildsPaperShapedTopology) {
  const Scenario scenario(ScenarioConfig{});
  const auto& topo = scenario.topology();
  EXPECT_EQ(topo.num_base_stations(), 6u);
  EXPECT_EQ(topo.num_clusters(), 2u);
  EXPECT_EQ(topo.num_servers(), 16u);
  EXPECT_EQ(topo.num_devices(), 100u);
  // Half 64-core, half 128-core.
  int cores64 = 0;
  int cores128 = 0;
  for (const auto& server : topo.servers()) {
    if (server.cores == 64) ++cores64;
    if (server.cores == 128) ++cores128;
    EXPECT_DOUBLE_EQ(server.freq_min_ghz, 1.8);
    EXPECT_DOUBLE_EQ(server.freq_max_ghz, 3.6);
  }
  EXPECT_EQ(cores64, 8);
  EXPECT_EQ(cores128, 8);
  // Bandwidths within the paper's draw ranges.
  for (const auto& bs : topo.base_stations()) {
    EXPECT_GE(bs.access_bandwidth_hz, 50e6);
    EXPECT_LE(bs.access_bandwidth_hz, 100e6);
    EXPECT_GE(bs.fronthaul_bandwidth_hz, 0.5e9);
    EXPECT_LE(bs.fronthaul_bandwidth_hz, 1e9);
    EXPECT_DOUBLE_EQ(bs.fronthaul_spectral_efficiency, 10.0);
  }
}

TEST(Scenario, StatesHaveValidShapeAndRanges) {
  Scenario scenario(small_config());
  for (int t = 0; t < 48; ++t) {
    const auto state = scenario.next_state();
    EXPECT_EQ(state.slot, static_cast<std::size_t>(t));
    ASSERT_EQ(state.task_cycles.size(), 12u);
    ASSERT_EQ(state.data_bits.size(), 12u);
    ASSERT_EQ(state.channel.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_GE(state.task_cycles[i], 50e6);
      EXPECT_LE(state.task_cycles[i], 200e6);
      EXPECT_GE(state.data_bits[i], 3e6);
      EXPECT_LE(state.data_bits[i], 10e6);
      bool any_usable = false;
      for (double h : state.channel[i]) {
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 50.0);
        any_usable = any_usable || h >= 15.0;
      }
      // Low-band stations cover the whole region: always an option.
      EXPECT_TRUE(any_usable);
    }
    EXPECT_GT(state.price_per_mwh, 0.0);
  }
}

TEST(Scenario, SameSeedSameStates) {
  Scenario a(small_config(11));
  Scenario b(small_config(11));
  const auto sa = a.generate_states(10);
  const auto sb = b.generate_states(10);
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(sa[t].task_cycles, sb[t].task_cycles);
    EXPECT_EQ(sa[t].data_bits, sb[t].data_bits);
    EXPECT_EQ(sa[t].channel, sb[t].channel);
    EXPECT_DOUBLE_EQ(sa[t].price_per_mwh, sb[t].price_per_mwh);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  Scenario a(small_config(1));
  Scenario b(small_config(2));
  const auto sa = a.generate_states(3);
  const auto sb = b.generate_states(3);
  EXPECT_NE(sa[0].task_cycles, sb[0].task_cycles);
}

TEST(Simulator, RunsAllPolicyKinds) {
  Scenario scenario(small_config());
  const auto states = scenario.generate_states(24);
  std::vector<SimulationResult> results;
  for (core::P2aSolverKind kind :
       {core::P2aSolverKind::kCgba, core::P2aSolverKind::kMcba,
        core::P2aSolverKind::kRopt}) {
    core::DppConfig config;
    config.v = 50.0;
    config.bdma.solver = kind;
    config.bdma.iterations = 2;
    config.bdma.mcba.iterations = 300;
    DppPolicy policy(scenario.instance(), config);
    results.push_back(run_policy(policy, states));
    EXPECT_EQ(results.back().metrics.slots(), 24u);
    EXPECT_GT(results.back().metrics.average_latency(), 0.0);
  }
  // Names distinguish the variants.
  EXPECT_EQ(results[0].policy_name, "BDMA-based DPP");
  EXPECT_EQ(results[1].policy_name, "MCBA-based DPP");
  EXPECT_EQ(results[2].policy_name, "ROPT-based DPP");
  // BDMA-based DPP wins on latency (the paper's Fig. 9 ranking).
  EXPECT_LT(results[0].metrics.average_latency(),
            results[2].metrics.average_latency());
}

TEST(Simulator, DeterministicGivenSeed) {
  Scenario scenario(small_config());
  const auto states = scenario.generate_states(12);
  core::DppConfig config;
  config.bdma.iterations = 2;
  DppPolicy policy(scenario.instance(), config);
  const auto a = run_policy(policy, states, 5);
  const auto b = run_policy(policy, states, 5);
  EXPECT_EQ(a.metrics.latency_series(), b.metrics.latency_series());
  EXPECT_EQ(a.metrics.queue_series(), b.metrics.queue_series());
}

TEST(Simulator, ResetHappensBetweenRuns) {
  Scenario scenario(small_config());
  ScenarioConfig tight = small_config();
  tight.budget_per_slot = 0.05;  // infeasibly tight: queue definitely grows
  Scenario tight_scenario(tight);
  const auto states = tight_scenario.generate_states(12);
  core::DppConfig config;
  config.bdma.iterations = 1;
  DppPolicy policy(tight_scenario.instance(), config);
  const auto first = run_policy(policy, states);
  // Queue grew during the first run...
  EXPECT_GT(policy.queue(), 0.0);
  const auto second = run_policy(policy, states);
  // ...but reset() gave the second run the same trajectory.
  EXPECT_EQ(first.metrics.queue_series(), second.metrics.queue_series());
}

TEST(Simulator, TailAveragesMatchManualComputation) {
  Scenario scenario(small_config());
  const auto states = scenario.generate_states(10);
  core::DppConfig config;
  config.bdma.iterations = 1;
  DppPolicy policy(scenario.instance(), config);
  const auto result = run_policy(policy, states);
  const auto tail = tail_averages(result, 4);
  const auto& series = result.metrics.latency_series();
  double expected = 0.0;
  for (std::size_t t = 6; t < 10; ++t) expected += series[t];
  EXPECT_NEAR(tail.latency, expected / 4.0, 1e-12);
  EXPECT_THROW((void)tail_averages(result, 11), std::invalid_argument);
  EXPECT_THROW((void)tail_averages(result, 0), std::invalid_argument);
}

TEST(FixedFrequency, RunsAndRespectsFraction) {
  Scenario scenario(small_config());
  const auto states = scenario.generate_states(6);
  FixedFrequencyPolicy max_policy(scenario.instance(), 1.0);
  FixedFrequencyPolicy min_policy(scenario.instance(), 0.0);
  const auto fast = run_policy(max_policy, states);
  const auto slow = run_policy(min_policy, states);
  // Full frequency: lower latency, higher energy cost.
  EXPECT_LT(fast.metrics.average_latency(), slow.metrics.average_latency());
  EXPECT_GT(fast.metrics.average_energy_cost(),
            slow.metrics.average_energy_cost());
  EXPECT_THROW(FixedFrequencyPolicy(scenario.instance(), 1.5),
               std::invalid_argument);
}

TEST(Report, PrintsComparisonAndScenario) {
  Scenario scenario(small_config());
  const auto states = scenario.generate_states(4);
  core::DppConfig config;
  config.bdma.iterations = 1;
  DppPolicy policy(scenario.instance(), config);
  const auto result = run_policy(policy, states);
  std::ostringstream oss;
  print_comparison(oss, {result}, scenario.config().budget_per_slot);
  EXPECT_NE(oss.str().find("BDMA-based DPP"), std::string::npos);
  EXPECT_NE(oss.str().find("avg latency"), std::string::npos);
  EXPECT_NE(oss.str().find("cost/budget"), std::string::npos);
  std::ostringstream oss2;
  print_scenario(oss2, scenario);
  EXPECT_NE(oss2.str().find("MEC scenario"), std::string::npos);
}

}  // namespace
}  // namespace eotora::sim

namespace eotora::sim {
namespace {

TEST(ScenarioVariants, GaussMarkovAndLogDistanceChannelWork) {
  ScenarioConfig config;
  config.devices = 8;
  config.mid_band_stations = 2;
  config.clusters = 1;
  config.servers_per_cluster = 2;
  config.seed = 31;
  config.mobility = ScenarioConfig::Mobility::kGaussMarkov;
  config.channel.attenuation =
      topology::ChannelConfig::Attenuation::kLogDistance;
  Scenario scenario(config);
  core::DppConfig dpp;
  dpp.bdma.iterations = 1;
  DppPolicy policy(scenario.instance(), dpp);
  const auto states = scenario.generate_states(24);
  const auto result = run_policy(policy, states);
  EXPECT_EQ(result.metrics.slots(), 24u);
  EXPECT_GT(result.metrics.average_latency(), 0.0);
}

TEST(ScenarioVariants, MobilityModelsProduceDifferentChannels) {
  ScenarioConfig a;
  a.devices = 6;
  a.mid_band_stations = 2;
  a.clusters = 1;
  a.servers_per_cluster = 2;
  a.seed = 32;
  ScenarioConfig b = a;
  b.mobility = ScenarioConfig::Mobility::kGaussMarkov;
  Scenario sa(a);
  Scenario sb(b);
  // Skip a few slots so positions diverge, then compare channels.
  for (int t = 0; t < 5; ++t) {
    (void)sa.next_state();
    (void)sb.next_state();
  }
  EXPECT_NE(sa.next_state().channel, sb.next_state().channel);
}

}  // namespace
}  // namespace eotora::sim
