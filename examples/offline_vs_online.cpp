// How far is the online controller from the best β-only benchmark?
//
// Lemma 2 / Theorem 4 compare DPP against the optimal policy that sees only
// the current state and keeps the cost at the budget in every slot. This
// example computes that benchmark per slot (core/beta_only: dualized budget,
// bisection on the multiplier) and runs BDMA-based DPP on the same states,
// then reports the latency gap and the Theorem-4 instrumentation (empirical
// B, the B·D/V term) from core/lyapunov.
//
//   $ ./examples/offline_vs_online
#include <iostream>

#include "eotora/eotora.h"

int main() {
  using namespace eotora;

  sim::ScenarioConfig config;
  config.devices = 80;
  config.budget_per_slot = 1.0;
  config.seed = 555;
  sim::Scenario scenario(config);
  sim::print_scenario(std::cout, scenario);

  const std::size_t horizon = 24 * 5;
  const auto states = scenario.generate_states(horizon);
  const auto& instance = scenario.instance();

  // Online: DPP with Lyapunov instrumentation.
  core::DppConfig dpp;
  dpp.v = 100.0;
  dpp.initial_queue = 25.0;
  dpp.bdma.iterations = 3;
  core::DppController controller(instance, dpp);
  core::LyapunovAnalyzer analyzer(dpp.v);
  util::Rng rng(1);
  double online_latency = 0.0;
  double online_cost = 0.0;
  for (const auto& state : states) {
    const auto slot = controller.step(state, rng);
    analyzer.record(slot);
    online_latency += slot.latency;
    online_cost += slot.energy_cost;
  }
  online_latency /= static_cast<double>(horizon);
  online_cost /= static_cast<double>(horizon);

  // Benchmark: β-only oracle spending exactly the budget each slot. (It may
  // be infeasible in expensive slots — it then pays the floor cost, which an
  // online policy can legally average out; this is why DPP can even beat it
  // in latency at equal average cost.)
  core::BetaOnlyConfig oracle_config;
  oracle_config.bdma.iterations = 3;
  double oracle_latency = 0.0;
  double oracle_cost = 0.0;
  for (const auto& state : states) {
    const auto slot = core::solve_beta_only(
        instance, state, config.budget_per_slot, oracle_config, rng);
    oracle_latency += slot.latency;
    oracle_cost += slot.energy_cost;
  }
  oracle_latency /= static_cast<double>(horizon);
  oracle_cost /= static_cast<double>(horizon);

  util::Table table({"policy", "avg latency (s)", "avg cost ($/slot)"});
  table.add_row({"BDMA-based DPP (V = 100)",
                 util::format_double(online_latency, 4),
                 util::format_double(online_cost, 4)});
  table.add_row({"beta-only oracle (per-slot budget)",
                 util::format_double(oracle_latency, 4),
                 util::format_double(oracle_cost, 4)});
  table.print(std::cout);

  std::cout << "\nTheorem 4 instrumentation over " << horizon << " slots:\n"
            << "  empirical B (mean of 0.5*theta^2) : " << analyzer.b_mean()
            << "\n  empirical B (max)                 : " << analyzer.b_max()
            << "\n  latency-gap term B*D/V (D = 24)   : "
            << analyzer.theorem4_gap(24.0) << " s\n"
            << "  drift telescoping check           : sum "
            << analyzer.drift_sum() << " vs 0.5*(Q_T^2 - Q_0^2) = "
            << analyzer.telescoped_drift() << "\n"
            << "\nreading: DPP's time-average latency lands within the "
               "B*D/V band of the per-slot-budget benchmark, at compliant "
               "average cost — the Theorem 4 trade-off made concrete.\n";
  return 0;
}
