// StageStats — per-stage execution statistics of a pipeline policy.
//
// Lives in its own header (rather than sim/pipeline/stage.h) so the Policy
// base class can expose `stage_stats()` without pulling the whole stage
// machinery — and its solver headers — into every policy user.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counters.h"

namespace eotora::sim::pipeline {

// Captured by PolicyGraph around each stage invocation: the stage's share
// of the existing per-solve SolverCounters (deterministic; the per-stage
// counters of one step sum exactly to the step's total) and its wall-clock
// share of step time (not deterministic — stripped wherever artifacts are
// diffed).
struct StageStats {
  std::string name;
  std::uint64_t runs = 0;  // stage invocations (loop stages run z× per slot)
  double seconds = 0.0;
  core::counters::SolverCounters counters;
  // Per-shard effort breakdown for stages that run the sharded P2-A
  // drivers (core/sharded), accumulated by component index across the
  // stage's runs; empty for unsharded stages. Deterministic for every
  // worker count, and the in-shard fields (cgba_*, mcba_*, engine_*) sum
  // exactly to this stage's `counters` totals.
  std::vector<core::counters::SolverCounters> shards;
};

}  // namespace eotora::sim::pipeline
