// Fluent construction of Topology objects.
//
// The builder assigns dense ids in insertion order and wires the
// cluster <-> server relation, so scenario code stays declarative.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace eotora::topology {

class TopologyBuilder {
 public:
  TopologyBuilder& set_region(Region region);

  // Adds a server room at `position`; returns its id.
  ClusterId add_cluster(std::string name, Point position);

  // Adds a server to an existing cluster; returns its id.
  ServerId add_server(std::string name, ClusterId cluster, int cores,
                      double freq_min_ghz, double freq_max_ghz,
                      std::shared_ptr<const energy::EnergyModel> energy_model);

  // Adds a base station; `clusters` are the rooms its fronthaul reaches
  // (exactly one for wired fronthaul).
  BaseStationId add_base_station(std::string name, Point position, Band band,
                                 double coverage_radius_m,
                                 double access_bandwidth_hz,
                                 double fronthaul_bandwidth_hz,
                                 double fronthaul_spectral_efficiency,
                                 std::vector<ClusterId> clusters);

  DeviceId add_device(std::string name, Point position,
                      double speed_mps = 1.5);

  // Validates and produces the immutable topology. The builder can be reused
  // afterwards (its state is unchanged).
  [[nodiscard]] Topology build() const;

 private:
  Region region_;
  std::vector<BaseStation> base_stations_;
  std::vector<Cluster> clusters_;
  std::vector<Server> servers_;
  std::vector<MobileDevice> devices_;
};

}  // namespace eotora::topology
