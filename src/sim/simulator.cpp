#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "core/counters.h"
#include "util/check.h"
#include "util/timer.h"
#include "util/trace.h"

namespace eotora::sim {

namespace {

// The one streaming loop every run_policy overload funnels through. One
// SlotState buffer is reused across the whole drain, so the loop itself
// allocates nothing per slot once the source's shapes have stabilized.
SimulationResult run_policy_stream(Policy& policy,
                                   const core::Instance* instance,
                                   StateSource& source,
                                   const AuditConfig* audit,
                                   std::uint64_t seed, bool keep_series) {
  policy.reset();
  util::Rng rng(seed);
  SimulationResult result;
  result.policy_name = policy.name();
  result.metrics.set_keep_series(keep_series);
  if (keep_series && source.size_hint() != StateSource::kUnknownSize) {
    result.metrics.reserve(source.size_hint());
  }
  std::unique_ptr<SlotAuditor> auditor;
  if (audit != nullptr) {
    auditor = std::make_unique<SlotAuditor>(*instance, *audit);
  }
  core::SlotState state;
  core::DppSlotResult slot;
  double state_seconds = 0.0;
  double decision_seconds = 0.0;
  double audit_seconds = 0.0;
  util::Timer timer;
  for (;;) {
    // Phase 1: pull the next slot (generation / replay parse / prefetch
    // wait). Timed so streaming runs can attribute source cost.
    bool have_state;
    {
      EOTORA_TRACE_SPAN("slot/state");
      timer.reset();
      have_state = source.next(state);
      state_seconds += timer.elapsed_seconds();
    }
    if (!have_state) break;
    // Phase 2: decide. The counters Scope is installed around step() only,
    // so audit-time re-solves below do not pollute the solver totals.
    {
      EOTORA_TRACE_SPAN("slot/decide");
      const core::counters::Scope scope(result.counters);
      timer.reset();
      slot = policy.step(state, rng);
      decision_seconds += timer.elapsed_seconds();
    }
    // Phase 3: audit (optional; excluded from wall_seconds).
    if (auditor != nullptr) {
      EOTORA_TRACE_SPAN("slot/audit");
      timer.reset();
      auditor->observe(state, slot);
      audit_seconds += timer.elapsed_seconds();
    }
    result.metrics.record(slot);
  }
  EOTORA_REQUIRE_MSG(result.metrics.slots() > 0,
                     "state source produced no slots");
  result.wall_seconds = decision_seconds;
  result.state_seconds = state_seconds;
  result.audit_seconds = audit_seconds;
  result.stages = policy.stage_stats();
  if (auditor != nullptr) result.audit = auditor->report();
  return result;
}

}  // namespace

SimulationResult run_policy(Policy& policy, StateSource& source,
                            std::uint64_t seed, bool keep_series) {
  return run_policy_stream(policy, nullptr, source, nullptr, seed,
                           keep_series);
}

SimulationResult run_policy(Policy& policy, const core::Instance& instance,
                            StateSource& source, const AuditConfig& audit,
                            std::uint64_t seed, bool keep_series) {
  return run_policy_stream(policy, &instance, source, &audit, seed,
                           keep_series);
}

SimulationResult run_policy(Policy& policy,
                            const std::vector<core::SlotState>& states,
                            std::uint64_t seed) {
  EOTORA_REQUIRE(!states.empty());
  MaterializedSource source(states);
  return run_policy(policy, source, seed);
}

SimulationResult run_policy(Policy& policy, const core::Instance& instance,
                            const std::vector<core::SlotState>& states,
                            const AuditConfig& audit, std::uint64_t seed) {
  EOTORA_REQUIRE(!states.empty());
  MaterializedSource source(states);
  return run_policy(policy, instance, source, audit, seed);
}

WindowAverages tail_averages(const SimulationResult& result,
                             std::size_t window) {
  if (!result.metrics.keeps_series()) {
    throw std::invalid_argument(
        "tail_averages requires the per-slot series, but this run disabled "
        "them (run_policy keep_series=false / "
        "MetricsCollector::set_keep_series(false))");
  }
  const auto& latency = result.metrics.latency_series();
  const auto& cost = result.metrics.cost_series();
  const auto& queue = result.metrics.queue_series();
  EOTORA_REQUIRE(window > 0);
  if (window > latency.size()) {
    throw std::invalid_argument(
        "tail_averages: window=" + std::to_string(window) +
        " exceeds recorded slots=" + std::to_string(latency.size()));
  }
  WindowAverages averages;
  for (std::size_t t = latency.size() - window; t < latency.size(); ++t) {
    averages.latency += latency[t];
    averages.energy_cost += cost[t];
    averages.queue += queue[t];
  }
  const double w = static_cast<double>(window);
  averages.latency /= w;
  averages.energy_cost /= w;
  averages.queue /= w;
  return averages;
}

}  // namespace eotora::sim
