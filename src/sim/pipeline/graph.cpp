#include "sim/pipeline/graph.h"

#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/timer.h"
#include "util/trace.h"

namespace eotora::sim::pipeline {

const char* port_type_name(PortType type) {
  switch (type) {
    case PortType::kSlotState: return "SlotState";
    case PortType::kQueue: return "Queue";
    case PortType::kFrequencies: return "Frequencies";
    case PortType::kP2aSolution: return "P2aSolution";
    case PortType::kAssignment: return "Assignment";
    case PortType::kSolverLoop: return "SolverLoop";
    case PortType::kBestSolution: return "BestSolution";
    case PortType::kOracle: return "Oracle";
    case PortType::kForecast: return "Forecast";
    case PortType::kDecision: return "Decision";
  }
  return "?";
}

namespace {

struct ProducedPort {
  const char* name;
  PortType type;
  std::size_t producer;  // stage index
};

void append_available(std::ostringstream& message,
                      const std::vector<ProducedPort>& produced) {
  if (produced.empty()) {
    message << " (no upstream ports)";
    return;
  }
  message << "; available upstream ports:";
  for (const auto& port : produced) {
    message << " " << port.name << " (" << port_type_name(port.type) << ")";
  }
}

// Validates the typed-port contract of `stages` under `loop`. The produced
// set grows stage by stage; inside [loop.first, loop.last] the outputs of
// EVERY loop stage are visible (loop-carried dependencies are legal there,
// because iteration k+1 sees what iteration k wrote).
void validate_ports(const std::string& label,
                    const std::vector<std::unique_ptr<Stage>>& stages,
                    const LoopSpec& loop) {
  const bool has_loop = loop.iterations > 0;
  std::vector<ProducedPort> produced;
  std::vector<ProducedPort> loop_produced;
  if (has_loop) {
    for (std::size_t i = loop.first; i <= loop.last; ++i) {
      for (const PortSpec& out : stages[i]->outputs()) {
        loop_produced.push_back({out.name, out.type, i});
      }
    }
  }
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& stage = *stages[i];
    const bool in_loop = has_loop && i >= loop.first && i <= loop.last;
    for (const PortSpec& in : stage.inputs()) {
      const std::string want = in.name;
      const ProducedPort* match = nullptr;
      const ProducedPort* name_only = nullptr;
      auto scan = [&](const std::vector<ProducedPort>& ports) {
        for (const auto& port : ports) {
          if (want != port.name) continue;
          name_only = &port;
          if (port.type == in.type) match = &port;
        }
      };
      scan(produced);
      if (in_loop) scan(loop_produced);
      if (match != nullptr) continue;
      std::ostringstream message;
      message << "policy graph \"" << label << "\": stage '" << stage.name()
              << "' input port '" << in.name << "' ("
              << port_type_name(in.type) << ") ";
      if (name_only != nullptr) {
        message << "is produced by stage '"
                << stages[name_only->producer]->name()
                << "' with mismatched type "
                << port_type_name(name_only->type);
      } else {
        message << "is not produced by any upstream stage";
      }
      append_available(message, produced);
      throw std::invalid_argument(message.str());
    }
    for (const PortSpec& out : stage.outputs()) {
      // Re-producing a port under a different type would make downstream
      // declarations ambiguous; same-type overwrite (last writer wins,
      // e.g. MPC's planned frequencies replacing the floor) is legal.
      for (const auto& port : produced) {
        if (std::string(out.name) == port.name && out.type != port.type) {
          std::ostringstream message;
          message << "policy graph \"" << label << "\": stage '"
                  << stage.name() << "' output port '" << out.name << "' ("
                  << port_type_name(out.type)
                  << ") conflicts with the same-named "
                  << port_type_name(port.type) << " port from stage '"
                  << stages[port.producer]->name() << "'";
          throw std::invalid_argument(message.str());
        }
      }
      produced.push_back({out.name, out.type, i});
    }
  }
}

}  // namespace

PolicyGraph::PolicyGraph(std::string label, const core::Instance& instance,
                         std::vector<std::unique_ptr<Stage>> stages,
                         LoopSpec loop)
    : label_(std::move(label)), instance_(&instance), loop_(loop) {
  if (stages.empty()) {
    throw std::invalid_argument("policy graph \"" + label_ +
                                "\" has no stages");
  }
  for (const auto& stage : stages) {
    EOTORA_ASSERT(stage != nullptr);
  }
  if (loop_.iterations > 0) {
    if (loop_.first > loop_.last || loop_.last >= stages.size()) {
      std::ostringstream message;
      message << "policy graph \"" << label_ << "\": loop region ["
              << loop_.first << ", " << loop_.last
              << "] is out of range for " << stages.size() << " stages";
      throw std::invalid_argument(message.str());
    }
  }
  validate_ports(label_, stages, loop_);
  slots_.reserve(stages.size());
  for (auto& stage : stages) {
    Slot slot;
    slot.stats.name = stage->name();
    slot.stage = std::move(stage);
    slots_.push_back(std::move(slot));
  }
}

void PolicyGraph::run_slot(Slot& slot, StageContext& ctx) {
  util::trace::Span span(slot.stage->span_name());
  core::counters::SolverCounters delta;
  util::Timer timer;
  {
    const core::counters::Scope scope(delta);
    slot.stage->run(ctx);
  }
  slot.stats.seconds += timer.elapsed_seconds();
  slot.stats.runs += 1;
  slot.stats.counters.merge(delta);
  // Forward the stage's effort to whatever sink the caller installed, so
  // the per-solve totals the simulator captures are unchanged.
  core::counters::active().merge(delta);
}

core::DppSlotResult PolicyGraph::step(const core::SlotState& state,
                                      util::Rng& rng) {
  StageContext& ctx = ctx_;
  ctx.instance = instance_;
  ctx.state = &state;
  ctx.rng = &rng;
  ctx.loop_iteration = 0;
  ctx.result = core::DppSlotResult{};

  const bool has_loop = loop_.iterations > 0;
  const std::size_t loop_entry = has_loop ? loop_.first : slots_.size();
  for (std::size_t i = 0; i < loop_entry; ++i) run_slot(slots_[i], ctx);
  if (has_loop) {
    util::trace::Span loop_span(loop_.span);
    for (std::size_t iter = 0; iter < loop_.iterations; ++iter) {
      util::trace::Span iteration_span(loop_.iteration_span);
      ctx.loop_iteration = iter;
      for (std::size_t i = loop_.first; i <= loop_.last; ++i) {
        run_slot(slots_[i], ctx);
      }
    }
    ctx.loop_iteration = 0;
    for (std::size_t i = loop_.last + 1; i < slots_.size(); ++i) {
      run_slot(slots_[i], ctx);
    }
  }
  // Commit pass: fold downstream results back into stage scratch (the
  // virtual-queue update reads the emitted Θ).
  for (auto& slot : slots_) {
    util::Timer timer;
    slot.stage->commit(ctx);
    slot.stats.seconds += timer.elapsed_seconds();
  }
  return ctx.result;
}

void PolicyGraph::reset() {
  for (auto& slot : slots_) {
    slot.stage->reset();
    slot.stats.runs = 0;
    slot.stats.seconds = 0.0;
    slot.stats.counters.reset();
  }
}

std::vector<StageStats> PolicyGraph::stage_stats() const {
  std::vector<StageStats> stats;
  stats.reserve(slots_.size());
  for (const auto& slot : slots_) {
    stats.push_back(slot.stats);
    // Per-shard breakdowns live in the stage (it owns the sharded solves);
    // attach them at read time so run_slot's hot path stays untouched.
    stats.back().shards = slot.stage->shard_counters();
  }
  return stats;
}

std::string PolicyGraph::wiring_description() const {
  std::ostringstream out;
  out << "policy " << label_ << " (" << slots_.size() << " stages";
  if (loop_.iterations > 0) {
    out << ", loop stages [" << loop_.first << ".." << loop_.last << "] x"
        << loop_.iterations;
  }
  out << ")\n";
  const auto print_ports = [&out](const std::vector<PortSpec>& ports) {
    if (ports.empty()) {
      out << "(none)";
      return;
    }
    for (std::size_t p = 0; p < ports.size(); ++p) {
      if (p > 0) out << " ";
      out << ports[p].name << ":" << port_type_name(ports[p].type);
    }
  };
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Stage& stage = *slots_[i].stage;
    out << "  [" << i << "] " << stage.name() << "  ";
    print_ports(stage.inputs());
    out << " -> ";
    print_ports(stage.outputs());
    out << "\n";
  }
  return out.str();
}

Stage* PolicyGraph::find_stage(const std::string& name) {
  for (auto& slot : slots_) {
    if (name == slot.stage->name()) return slot.stage.get();
  }
  return nullptr;
}

}  // namespace eotora::sim::pipeline
