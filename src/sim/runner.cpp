#include "sim/runner.h"

#include <cmath>
#include <map>
#include <sstream>

#include "sim/scenario_registry.h"
#include "util/build_info.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace eotora::sim {

namespace {

using AxisSetter =
    std::function<void(double, ScenarioConfig&, PolicyParams&)>;

std::size_t as_count(double value, const char* what) {
  EOTORA_REQUIRE_MSG(value >= 0.0 && value == std::floor(value),
                     what << " axis requires a non-negative integer, got "
                          << value);
  return static_cast<std::size_t>(value);
}

const std::map<std::string, AxisSetter>& axis_setters() {
  static const std::map<std::string, AxisSetter> setters = {
      {"devices",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.devices = as_count(v, "devices");
       }},
      {"budget",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.budget_per_slot = v;
       }},
      {"v",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.v = v;
       }},
      {"initial-queue",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.initial_queue = v;
       }},
      {"bdma-iterations",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.bdma_iterations = as_count(v, "bdma-iterations");
       }},
      {"mcba-iterations",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.mcba_iterations = as_count(v, "mcba-iterations");
       }},
      {"fixed-fraction",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.fixed_fraction = v;
       }},
      {"seed",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.seed = static_cast<std::uint64_t>(
             as_count(v, "seed"));
       }},
      {"clusters",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.clusters = as_count(v, "clusters");
       }},
      {"servers-per-cluster",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.servers_per_cluster = as_count(v, "servers-per-cluster");
       }},
      {"mid-band-stations",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.mid_band_stations = as_count(v, "mid-band-stations");
       }},
      {"trend-weight",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.workload_trend_weight = v;
       }},
      {"shards",
       [](double v, ScenarioConfig&, PolicyParams& params) {
         params.shard_workers = as_count(v, "shards");
       }},
      {"districts",
       [](double v, ScenarioConfig& config, PolicyParams&) {
         config.metro_districts = as_count(v, "districts");
       }},
  };
  return setters;
}

}  // namespace

std::vector<std::string> sweep_axis_names() {
  std::vector<std::string> names;
  names.reserve(axis_setters().size());
  for (const auto& [name, setter] : axis_setters()) names.push_back(name);
  return names;
}

void apply_sweep_axis(const std::string& name, double value,
                      ScenarioConfig& config, PolicyParams& params) {
  const auto it = axis_setters().find(name);
  if (it == axis_setters().end()) {
    std::ostringstream message;
    message << "unknown sweep axis \"" << name << "\"; known axes:";
    for (const auto& known : sweep_axis_names()) message << ' ' << known;
    throw std::invalid_argument(message.str());
  }
  it->second(value, config, params);
}

double SweepCell::tail_latency_ci_halfwidth() const {
  if (seeds < 2) return 0.0;
  const double n = static_cast<double>(seeds);
  const double sample_stddev =
      tail_latency_stats.stddev() * std::sqrt(n / (n - 1.0));
  return 1.96 * sample_stddev / std::sqrt(n);
}

namespace {

void validate(const SweepSpec& spec) {
  EOTORA_REQUIRE(spec.horizon > 0);
  EOTORA_REQUIRE_MSG(spec.window > 0 && spec.window <= spec.horizon,
                     "window=" << spec.window
                               << " must be in [1, horizon=" << spec.horizon
                               << "]");
  EOTORA_REQUIRE(spec.seeds >= 1);
  if (!spec.scenario.empty()) {
    // Reject unknown preset names before any work happens.
    ScenarioConfig config = spec.base;
    apply_scenario_preset(spec.scenario, config);
  }
  EOTORA_REQUIRE_MSG(!spec.policies.empty(), "no policies selected");
  EOTORA_REQUIRE_MSG(spec.axes.size() <= 2,
                     "at most two sweep axes supported, got "
                         << spec.axes.size());
  for (const auto& axis : spec.axes) {
    EOTORA_REQUIRE_MSG(!axis.values.empty(),
                       "axis \"" << axis.name << "\" has no values");
    // Reject unknown names before any work happens.
    ScenarioConfig config = spec.base;
    PolicyParams params = spec.params;
    apply_sweep_axis(axis.name, axis.values.front(), config, params);
  }
  for (const auto& policy : spec.policies) {
    if (!is_registered_policy(policy)) {
      (void)policy_factory(policy);  // throws the descriptive error
    }
  }
}

// The cross product axis-major, policy-minor: for two axes, axis 0 is the
// slowest index, the policy the fastest. Cell order is part of the artifact
// contract (records compare across runs by position).
std::vector<AxisAssignment> enumerate_assignments(const SweepSpec& spec) {
  std::vector<AxisAssignment> assignments;
  if (spec.axes.empty()) {
    assignments.push_back({});
    return assignments;
  }
  const SweepAxis& first = spec.axes.front();
  for (const double value : first.values) {
    if (spec.axes.size() == 1) {
      assignments.push_back({{first.name, value}});
      continue;
    }
    const SweepAxis& second = spec.axes[1];
    for (const double inner : second.values) {
      assignments.push_back({{first.name, value}, {second.name, inner}});
    }
  }
  return assignments;
}

SweepCell run_cell(const SweepSpec& spec, const AxisAssignment& assignment,
                   const std::string& policy_name) {
  EOTORA_TRACE_SPAN("sweep/cell");
  util::Timer cell_timer;
  SweepCell cell;
  cell.axis_values = assignment;
  cell.policy = policy_name;
  cell.seeds = spec.seeds;

  ScenarioConfig config = spec.base;
  PolicyParams params = spec.params;
  if (!spec.scenario.empty()) apply_scenario_preset(spec.scenario, config);
  for (const auto& [axis, value] : assignment) {
    apply_sweep_axis(axis, value, config, params);
  }
  if (spec.configure) spec.configure(assignment, config, params);

  util::RunningStats tail_cost;
  util::RunningStats tail_backlog;
  util::RunningStats avg_latency;
  util::RunningStats avg_cost;
  util::RunningStats avg_backlog;
  // Queue-ledger checks only make sense for policies that keep the queue.
  AuditConfig audit = spec.audit;
  audit.check_queue = audit.check_queue && policy_tracks_queue(policy_name);

  for (std::size_t r = 0; r < spec.seeds; ++r) {
    ScenarioConfig seeded = config;
    seeded.seed = config.seed + r;
    SimulationResult result;
    if (spec.stream) {
      // Pull states slot-by-slot; the generated sequence is identical to
      // generate_states on the same seed, so every deterministic field
      // below matches the materialized branch bit-for-bit.
      ScenarioSource source(seeded, spec.horizon);
      auto policy = make_policy(policy_name, source.instance(), params);
      result = audit.mode == AuditMode::kOff
                   ? run_policy(*policy, source, 1 + r)
                   : run_policy(*policy, source.instance(), source, audit,
                                1 + r);
    } else {
      Scenario scenario(seeded);
      const auto states = scenario.generate_states(spec.horizon);
      auto policy = make_policy(policy_name, scenario.instance(), params);
      result = audit.mode == AuditMode::kOff
                   ? run_policy(*policy, states, 1 + r)
                   : run_policy(*policy, scenario.instance(), states, audit,
                                1 + r);
    }
    cell.audited_slots += result.audit.slots_audited;
    cell.audit_violations += result.audit.total_violations();
    const auto tail = tail_averages(result, spec.window);
    cell.policy_label = result.policy_name;
    cell.tail_latency_stats.add(tail.latency);
    tail_cost.add(tail.energy_cost);
    tail_backlog.add(tail.queue);
    avg_latency.add(result.metrics.average_latency());
    avg_cost.add(result.metrics.average_energy_cost());
    avg_backlog.add(result.metrics.average_queue());
    cell.decision_seconds += result.wall_seconds;
    cell.state_seconds += result.state_seconds;
    cell.audit_seconds += result.audit_seconds;
    cell.counters.merge(result.counters);
    if (cell.stages.empty()) {
      cell.stages = result.stages;
    } else {
      // Same policy, same assembly: the stage list is identical across
      // seeds, so merging by position is merging by stage.
      EOTORA_REQUIRE(cell.stages.size() == result.stages.size());
      for (std::size_t s = 0; s < cell.stages.size(); ++s) {
        EOTORA_REQUIRE(cell.stages[s].name == result.stages[s].name);
        cell.stages[s].runs += result.stages[s].runs;
        cell.stages[s].seconds += result.stages[s].seconds;
        cell.stages[s].counters.merge(result.stages[s].counters);
        // Per-shard breakdowns merge by component index (the component
        // layout is a function of the scenario, not the seed).
        auto& shards = cell.stages[s].shards;
        const auto& delta = result.stages[s].shards;
        if (delta.size() > shards.size()) shards.resize(delta.size());
        for (std::size_t c = 0; c < delta.size(); ++c) {
          shards[c].merge(delta[c]);
        }
      }
    }
  }
  cell.tail.latency = cell.tail_latency_stats.mean();
  cell.tail.energy_cost = tail_cost.mean();
  cell.tail.queue = tail_backlog.mean();
  cell.avg_latency = avg_latency.mean();
  cell.avg_cost = avg_cost.mean();
  cell.avg_backlog = avg_backlog.mean();
  cell.wall_seconds = cell_timer.elapsed_seconds();
  return cell;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, std::size_t threads) {
  validate(spec);
  util::Timer total_timer;

  // Tracing is process-global; scope it to this sweep and restore the
  // caller's setting afterwards (nested/sequential sweeps compose).
  const bool trace_here = !spec.trace.empty();
  const bool trace_was_enabled = util::trace::enabled();
  if (trace_here) {
    util::trace::clear();
    util::trace::set_enabled(true);
  }

  const auto assignments = enumerate_assignments(spec);
  struct CellKey {
    const AxisAssignment* assignment;
    const std::string* policy;
  };
  std::vector<CellKey> keys;
  keys.reserve(assignments.size() * spec.policies.size());
  for (const auto& assignment : assignments) {
    for (const auto& policy : spec.policies) {
      keys.push_back({&assignment, &policy});
    }
  }

  SweepResult result;
  result.name = spec.name;
  result.scenario = spec.scenario;
  result.axes = spec.axes;
  result.policies = spec.policies;
  result.horizon = spec.horizon;
  result.window = spec.window;
  result.seeds = spec.seeds;
  result.stream = spec.stream;
  result.audit_mode = spec.audit.mode;
  result.cells.resize(keys.size());

  auto& pool = util::ThreadPool::shared();
  const std::size_t workers = threads == 0 ? pool.size() : threads;
  {
    EOTORA_TRACE_SPAN("sweep/run");
    // Cell i writes slot i; the merge below is a no-op, so the result is
    // independent of how the pool interleaved the cells.
    pool.parallel_for_index(keys.size(), workers, [&](std::size_t i) {
      result.cells[i] = run_cell(spec, *keys[i].assignment, *keys[i].policy);
    });
  }

  if (trace_here) {
    util::trace::set_enabled(trace_was_enabled);
    util::trace::write_chrome_json(spec.trace);
  }
  result.wall_seconds = total_timer.elapsed_seconds();
  return result;
}

util::Table SweepResult::table() const {
  std::vector<std::string> headers;
  for (const auto& axis : axes) headers.push_back(axis.name);
  headers.insert(headers.end(),
                 {"policy", "tail latency (s)", "tail cost ($/slot)",
                  "tail backlog", "avg latency (s)"});
  const bool with_ci = seeds > 1;
  if (with_ci) headers.push_back("latency 95% CI");
  headers.push_back("run s");

  util::Table table(headers);
  for (const auto& cell : cells) {
    std::vector<std::string> row;
    for (const auto& [axis, value] : cell.axis_values) {
      row.push_back(util::format_double(value, 2));
    }
    row.push_back(cell.policy_label);
    row.push_back(util::format_double(cell.tail.latency, 3));
    row.push_back(util::format_double(cell.tail.energy_cost, 3));
    row.push_back(util::format_double(cell.tail.queue, 3));
    row.push_back(util::format_double(cell.avg_latency, 3));
    if (with_ci) {
      row.push_back("+/- " +
                    util::format_double(cell.tail_latency_ci_halfwidth(), 3));
    }
    row.push_back(util::format_double(cell.decision_seconds, 2));
    table.add_row(std::move(row));
  }
  return table;
}

util::Json SweepResult::to_json() const {
  const bool audited = audit_mode != AuditMode::kOff;
  util::Json doc = util::Json::object();
  doc["schema"] = "eotora-sweep-v1";
  // Provenance stamps (additive, backward-compatible with v1 readers):
  // which build produced this artifact. "unknown" outside a git checkout.
  doc["commit"] = util::build_info().commit;
  doc["build_type"] = util::build_info().build_type;
  doc["name"] = name;
  if (!scenario.empty()) doc["scenario"] = scenario;
  doc["horizon"] = horizon;
  doc["window"] = window;
  doc["seeds"] = seeds;
  doc["stream"] = stream;
  if (audited) {
    doc["audit_mode"] =
        audit_mode == AuditMode::kEverySlot ? "every-slot" : "sampled";
  }
  util::Json axes_json = util::Json::array();
  for (const auto& axis : axes) {
    util::Json axis_json = util::Json::object();
    axis_json["name"] = axis.name;
    util::Json values = util::Json::array();
    for (const double value : axis.values) values.push_back(value);
    axis_json["values"] = std::move(values);
    axes_json.push_back(std::move(axis_json));
  }
  doc["axes"] = std::move(axes_json);
  util::Json policies_json = util::Json::array();
  for (const auto& policy : policies) policies_json.push_back(policy);
  doc["policies"] = std::move(policies_json);

  util::Json records = util::Json::array();
  for (const auto& cell : cells) {
    util::Json record = util::Json::object();
    for (const auto& [axis, value] : cell.axis_values) record[axis] = value;
    record["policy"] = cell.policy;
    record["policy_label"] = cell.policy_label;
    record["tail_latency"] = cell.tail.latency;
    record["tail_cost"] = cell.tail.energy_cost;
    record["tail_backlog"] = cell.tail.queue;
    record["avg_latency"] = cell.avg_latency;
    record["avg_cost"] = cell.avg_cost;
    record["avg_backlog"] = cell.avg_backlog;
    record["tail_latency_ci"] = cell.tail_latency_ci_halfwidth();
    record["tail_latency_min"] = cell.tail_latency_stats.min();
    record["tail_latency_max"] = cell.tail_latency_stats.max();
    if (audited) {
      record["audited_slots"] = cell.audited_slots;
      record["audit_violations"] = cell.audit_violations;
    }
    // Solver effort totals: deterministic, summed over the cell's seeds.
    record["counters"] = cell.counters.to_json();
    // Per-stage breakdown (pipeline policies): "name", "runs", and
    // "counters" are deterministic; "seconds" is wall-clock (strip it with
    // the other timing fields before diffing).
    util::Json stages_json = util::Json::array();
    for (const auto& stage : cell.stages) {
      util::Json stage_json = util::Json::object();
      stage_json["name"] = stage.name;
      stage_json["runs"] = stage.runs;
      stage_json["counters"] = stage.counters.to_json();
      // Sharded P2-A stages: one counters object per connected component,
      // in component order. Deterministic; the in-shard fields sum to this
      // stage's "counters" totals (CI's validator checks exactly that).
      if (!stage.shards.empty()) {
        util::Json shards_json = util::Json::array();
        for (const auto& shard : stage.shards) {
          shards_json.push_back(shard.to_json());
        }
        stage_json["shards"] = std::move(shards_json);
      }
      stage_json["seconds"] = stage.seconds;
      stages_json.push_back(std::move(stage_json));
    }
    record["stages"] = std::move(stages_json);
    // Wall-clock fields: NOT deterministic; strip before diffing records.
    record["decision_seconds"] = cell.decision_seconds;
    record["state_seconds"] = cell.state_seconds;
    record["audit_seconds"] = cell.audit_seconds;
    record["wall_seconds"] = cell.wall_seconds;
    records.push_back(std::move(record));
  }
  doc["records"] = std::move(records);
  doc["wall_seconds"] = wall_seconds;
  return doc;
}

void SweepResult::write_json(const std::string& path) const {
  util::write_json_file(path, to_json());
}

}  // namespace eotora::sim
