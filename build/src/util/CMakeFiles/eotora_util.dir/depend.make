# Empty dependencies file for eotora_util.
# This may be replaced when dependencies are built.
