// Statistical properties of the channel model and long-run scenario
// invariants (coverage under mobility, state stream health).
#include <gtest/gtest.h>

#include <memory>

#include "energy/quadratic_energy.h"
#include "sim/scenario.h"
#include "topology/builder.h"
#include "topology/channel_model.h"
#include "trace/decompose.h"
#include "util/rng.h"
#include "util/stats.h"

namespace eotora::topology {
namespace {

std::unique_ptr<Topology> wide_topology() {
  TopologyBuilder builder;
  builder.set_region({1000.0, 1000.0});
  const auto room = builder.add_cluster("room", {500.0, 500.0});
  builder.add_server("s", room, 64, 1.8, 3.6,
                     std::make_shared<energy::QuadraticEnergy>(5.0, 2.0,
                                                               20.0));
  builder.add_base_station("bs", {500.0, 500.0}, Band::kLow, 2000.0, 75e6,
                           0.7e9, 10.0, {room});
  builder.add_device("d", {500.0, 500.0});
  return std::make_unique<Topology>(builder.build());
}

TEST(ChannelStats, ShadowingIsAutocorrelated) {
  auto topo = wide_topology();
  ChannelConfig config;
  config.shadowing_rho = 0.9;
  config.shadowing_stddev = 2.0;
  // Wide efficiency band so the clamp rarely bites and the AR(1) signal
  // survives in the output.
  config.min_efficiency = 1.0;
  config.max_efficiency = 200.0;
  ChannelModel channel(config, *topo, util::Rng(1));
  std::vector<double> series;
  for (int t = 0; t < 3000; ++t) {
    series.push_back(channel.step(*topo)[0][0]);
  }
  const double acf1 = trace::autocorrelation(series, 1);
  const double acf10 = trace::autocorrelation(series, 10);
  EXPECT_GT(acf1, 0.7);        // strong slot-to-slot memory
  EXPECT_GT(acf1, acf10);      // decaying with lag
  EXPECT_LT(acf10, 0.6);
}

TEST(ChannelStats, ZeroShadowingIsDeterministicForStaticDevice) {
  auto topo = wide_topology();
  ChannelConfig config;
  config.shadowing_stddev = 0.0;
  ChannelModel channel(config, *topo, util::Rng(2));
  const double first = channel.step(*topo)[0][0];
  for (int t = 0; t < 10; ++t) {
    EXPECT_DOUBLE_EQ(channel.step(*topo)[0][0], first);
  }
}

TEST(ChannelStats, EfficiencyDecreasesWithDistanceOnAverage) {
  TopologyBuilder builder;
  builder.set_region({1000.0, 1000.0});
  const auto room = builder.add_cluster("room", {0.0, 0.0});
  builder.add_server("s", room, 64, 1.8, 3.6,
                     std::make_shared<energy::QuadraticEnergy>(5.0, 2.0,
                                                               20.0));
  builder.add_base_station("bs", {0.0, 0.0}, Band::kLow, 1000.0, 75e6, 0.7e9,
                           10.0, {room});
  builder.add_device("near", {50.0, 0.0});
  builder.add_device("far", {900.0, 0.0});
  Topology topo = builder.build();
  ChannelConfig config;
  config.shadowing_stddev = 1.0;
  // Widen the band so attenuation is visible through the clamp.
  config.min_efficiency = 1.0;
  config.max_efficiency = 100.0;
  ChannelModel channel(config, topo, util::Rng(3));
  util::RunningStats near_stats;
  util::RunningStats far_stats;
  for (int t = 0; t < 500; ++t) {
    const auto h = channel.step(topo);
    near_stats.add(h[0][0]);
    far_stats.add(h[1][0]);
  }
  EXPECT_GT(near_stats.mean(), far_stats.mean());
}

}  // namespace
}  // namespace eotora::topology

namespace eotora::sim {
namespace {

TEST(ScenarioLongRun, EveryDeviceAlwaysHasAFeasibleOption) {
  ScenarioConfig config;
  config.devices = 20;
  config.seed = 77;
  Scenario scenario(config);
  for (int t = 0; t < 500; ++t) {
    const auto state = scenario.next_state();
    for (std::size_t i = 0; i < 20; ++i) {
      bool usable = false;
      for (double h : state.channel[i]) usable = usable || h > 0.0;
      ASSERT_TRUE(usable) << "device " << i << " slot " << t;
    }
  }
}

TEST(ScenarioLongRun, PriceSeriesKeepsDiurnalStructure) {
  ScenarioConfig config;
  config.devices = 5;
  config.mid_band_stations = 1;
  config.clusters = 1;
  config.servers_per_cluster = 2;
  config.seed = 11;
  Scenario scenario(config);
  std::vector<double> prices;
  for (int t = 0; t < 24 * 30; ++t) {
    prices.push_back(scenario.next_state().price_per_mwh);
  }
  EXPECT_GT(trace::autocorrelation(prices, 24),
            trace::autocorrelation(prices, 7));
  EXPECT_GT(trace::autocorrelation(prices, 24), 0.3);
}

TEST(ScenarioLongRun, MidBandCoverageActuallyFluctuates) {
  // Mobility should move devices in and out of mid-band cells over time —
  // otherwise the base-station-selection decision is trivial.
  ScenarioConfig config;
  config.devices = 10;
  config.seed = 13;
  Scenario scenario(config);
  const std::size_t low_band = config.low_band_stations;
  int transitions = 0;
  std::vector<bool> covered_before(10, false);
  for (int t = 0; t < 300; ++t) {
    const auto state = scenario.next_state();
    for (std::size_t i = 0; i < 10; ++i) {
      bool covered = false;
      for (std::size_t k = low_band; k < state.channel[i].size(); ++k) {
        covered = covered || state.channel[i][k] > 0.0;
      }
      if (t > 0 && covered != covered_before[i]) ++transitions;
      covered_before[i] = covered;
    }
  }
  EXPECT_GT(transitions, 5);
}

}  // namespace
}  // namespace eotora::sim
