# Empty dependencies file for eotora_cli.
# This may be replaced when dependencies are built.
