#include "des/replay.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace eotora::des {

ReplayReport replay_log(const core::Instance& instance,
                        sim::StateSource& source, sim::Policy& policy,
                        const sim::DecisionLog& log,
                        const ReplayConfig& config) {
  EOTORA_REQUIRE_MSG(log.rows() > 0, "cannot replay an empty decision log");

  HorizonConfig static_config;
  static_config.discipline = SharingDiscipline::kStaticShares;
  static_config.arrivals = config.arrivals;
  static_config.arrival_rate = config.arrival_rate;
  static_config.arrival_seed = config.arrival_seed;
  static_config.record_events = config.record_events;
  static_config.keep_tasks = config.keep_tasks;
  HorizonConfig ps_config = static_config;
  ps_config.discipline = SharingDiscipline::kProcessorSharing;

  FlowSimulator static_sim(instance, static_config);
  FlowSimulator ps_sim(instance, ps_config);

  // The run_policy() convention: fresh policy state, one deterministic rng
  // stream, one step per slot.
  policy.reset();
  util::Rng rng(config.seed);

  ReplayReport report;
  report.slots.reserve(log.rows());
  core::SlotState state;
  for (const sim::DecisionLog::Row& expected : log.entries()) {
    EOTORA_REQUIRE_MSG(source.next(state),
                       "state stream ended after "
                           << report.slots.size() << " slots but the log has "
                           << log.rows());
    const core::DppSlotResult slot = policy.step(state, rng);

    ReplaySlot replayed;
    replayed.slot = report.slots.size();
    replayed.expected = expected;
    replayed.actual = sim::DecisionLog::make_row(state, slot);
    replayed.row_matches = replayed.actual == expected;
    if (!replayed.row_matches) ++report.mismatched_rows;

    static_sim.push_slot(state, slot.decision);
    ps_sim.push_slot(state, slot.decision);
    report.slots.push_back(replayed);
  }

  report.static_horizon = static_sim.finish();
  report.ps_horizon = ps_sim.finish();
  EOTORA_ASSERT(report.static_horizon.slots.size() == report.slots.size());
  EOTORA_ASSERT(report.ps_horizon.slots.size() == report.slots.size());

  for (std::size_t t = 0; t < report.slots.size(); ++t) {
    ReplaySlot& replayed = report.slots[t];
    const SlotGap& fixed = report.static_horizon.slots[t];
    const SlotGap& shared = report.ps_horizon.slots[t];
    replayed.analytic = fixed.analytic;
    replayed.realized_static = fixed.realized;
    replayed.realized_ps = shared.realized;
    replayed.max_device_gap_static = fixed.max_device_gap;
    replayed.log_latency_gap =
        std::abs(fixed.realized - replayed.expected.latency);
    replayed.spillovers_ps = shared.spillovers;
    report.max_static_device_gap =
        std::max(report.max_static_device_gap, fixed.max_device_gap);
    report.max_log_latency_gap =
        std::max(report.max_log_latency_gap, replayed.log_latency_gap);
  }
  return report;
}

}  // namespace eotora::des
