file(REMOVE_RECURSE
  "CMakeFiles/eotora_topology.dir/builder.cpp.o"
  "CMakeFiles/eotora_topology.dir/builder.cpp.o.d"
  "CMakeFiles/eotora_topology.dir/channel_model.cpp.o"
  "CMakeFiles/eotora_topology.dir/channel_model.cpp.o.d"
  "CMakeFiles/eotora_topology.dir/coverage.cpp.o"
  "CMakeFiles/eotora_topology.dir/coverage.cpp.o.d"
  "CMakeFiles/eotora_topology.dir/mobility.cpp.o"
  "CMakeFiles/eotora_topology.dir/mobility.cpp.o.d"
  "CMakeFiles/eotora_topology.dir/topology.cpp.o"
  "CMakeFiles/eotora_topology.dir/topology.cpp.o.d"
  "libeotora_topology.a"
  "libeotora_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eotora_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
