// Per-slot state deltas — the online controller's ingest format.
//
// Every batch entry point observes β_t as a complete SlotState; a live
// controller instead receives what CHANGED since the previous slot: devices
// joining or leaving, per-device channel rows moving, workloads and the
// energy price ticking. SlotDelta is that unit of change, DeltaApplier
// folds a delta stream into a persistent SlotState, DeltaRecorder produces
// the stream by diffing consecutive states, and DeltaSource replays a
// recorded stream back through the ordinary sim::StateSource interface.
//
// Determinism contract: deltas carry doubles verbatim (the serve codec
// encodes their IEEE-754 bits, and the recorder diffs bit patterns, not
// values), so applying the stream DeltaRecorder produced from a state
// sequence reconstructs that sequence byte-for-byte. A recorded run
// replayed through DeltaSource therefore yields decisions bit-identical to
// the equivalent batch run_policy drain — a differential test
// (tests/test_delta.cpp) gates this.
//
// The instance shape is immutable (every solver sizes its arenas from
// core::Instance), so "join" and "leave" address device SLOTS of a fixed
// population: the first delta must join every device (a full snapshot), a
// later leave scales the device's workload down to a keep-alive trickle —
// exactly the churn model of sim/scenario.h (Huang et al., arXiv
// 1904.13024) — and a rejoin reactivates the slot with fresh values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/state_source.h"

namespace eotora::sim {

// One slot's worth of state change. Empty sections simply leave that part
// of the persistent state untouched (a delta carrying only a price tick is
// legal), but every slot needs exactly one delta: applying it commits the
// slot.
struct SlotDelta {
  struct Join {
    std::uint32_t device = 0;
    double task_cycles = 0.0;            // f_{i,t}, cycles
    double data_bits = 0.0;              // d_{i,t}, bits
    std::vector<double> channel_row;     // h_{i,*,t}, one entry per BS
  };
  struct Workload {
    std::uint32_t device = 0;
    double task_cycles = 0.0;
    double data_bits = 0.0;
  };
  struct ChannelRow {
    std::uint32_t device = 0;
    std::vector<double> row;             // full row, one entry per BS
  };

  std::uint64_t slot = 0;
  bool has_price = false;
  double price = 0.0;                    // $/MWh, used when has_price
  std::vector<Join> joins;
  std::vector<std::uint32_t> leaves;
  std::vector<Workload> workloads;
  std::vector<ChannelRow> channels;
};

// Bitwise equality (doubles compared by IEEE bit pattern, so -0.0 != 0.0
// and the codec round-trip fuzz can assert exact reconstruction).
[[nodiscard]] bool operator==(const SlotDelta& a, const SlotDelta& b);
[[nodiscard]] inline bool operator!=(const SlotDelta& a, const SlotDelta& b) {
  return !(a == b);
}

// Structured delta-application failure: every rejected delta names what was
// wrong (kind), which slot carried it, and — when one is implicated —
// which device. The applier validates before mutating, so a throwing
// apply() leaves the persistent state untouched.
class DeltaError : public std::runtime_error {
 public:
  enum class Kind {
    kOutOfOrderSlot,  // delta.slot != previous committed slot + 1
    kDuplicateJoin,   // join of an already-present device
    kUnknownDevice,   // leave/update of a device that is not present
    kBadShape,        // device index or channel row size off the instance
    kBadValue,        // non-finite or out-of-domain numeric payload
  };

  static constexpr std::size_t kNoDevice = static_cast<std::size_t>(-1);

  DeltaError(Kind kind, std::uint64_t slot, std::size_t device,
             const std::string& message);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::uint64_t slot() const { return slot_; }
  // kNoDevice when no single device is implicated.
  [[nodiscard]] std::size_t device() const { return device_; }

 private:
  Kind kind_;
  std::uint64_t slot_;
  std::size_t device_;
};

// Folds SlotDeltas into a persistent SlotState sized for a fixed
// (devices x base_stations) instance shape.
class DeltaApplier {
 public:
  // `away_workload_fraction` (in (0, 1]) is the keep-alive trickle a left
  // device's task and data shrink to, mirroring
  // ScenarioConfig::Churn::away_workload_fraction: the slot stays feasible
  // for every solver (f > 0) while carrying negligible load.
  DeltaApplier(std::size_t devices, std::size_t base_stations,
               double away_workload_fraction = 0.05);

  // Validates `delta` completely, then applies it and copies the resulting
  // post-delta state into `out`. Throws DeltaError without mutating
  // anything on the first violation. Slot numbering: the first applied
  // delta fixes the starting slot; every later delta must carry exactly
  // previous + 1 (an out-of-order commit is a protocol error, not a
  // reorder request).
  void apply(const SlotDelta& delta, core::SlotState& out);

  [[nodiscard]] std::size_t devices() const { return devices_; }
  [[nodiscard]] std::size_t base_stations() const { return base_stations_; }
  [[nodiscard]] const core::SlotState& state() const { return state_; }
  [[nodiscard]] bool device_active(std::size_t device) const;
  [[nodiscard]] std::size_t active_devices() const;
  // Number of deltas applied since construction / reset().
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

  // Forgets everything: the next apply() starts a fresh stream.
  void reset();

 private:
  std::size_t devices_;
  std::size_t base_stations_;
  double away_fraction_;
  core::SlotState state_;
  std::vector<char> active_;
  std::uint64_t applied_ = 0;
};

// Streaming differ: feeds on consecutive SlotStates and emits the minimal
// SlotDelta between them (first call: a full snapshot joining every
// device). Comparisons are on IEEE bit patterns, so applying the emitted
// stream reconstructs the input byte-for-byte.
class DeltaRecorder {
 public:
  // Diffs `state` against the previously seen one into `out` (cleared
  // first). Shape changes between states throw std::invalid_argument.
  void diff(const core::SlotState& state, SlotDelta& out);

  void reset();

 private:
  core::SlotState previous_;
  bool have_previous_ = false;
};

// Materialized convenience forms of DeltaRecorder.
[[nodiscard]] std::vector<SlotDelta> record_deltas(StateSource& source);
[[nodiscard]] std::vector<SlotDelta> record_deltas(
    const std::vector<core::SlotState>& states);

// Replays a recorded delta stream as a StateSource: next() applies the next
// delta and hands out the reconstructed state. This is the bridge that
// lets the SAME slot stream a live controller ingested be re-driven
// through run_policy for bit-identity checks against the batch path.
class DeltaSource final : public StateSource {
 public:
  DeltaSource(std::vector<SlotDelta> deltas, std::size_t devices,
              std::size_t base_stations,
              double away_workload_fraction = 0.05);

  bool next(core::SlotState& out) override;
  void reset() override;
  [[nodiscard]] std::size_t size_hint() const override {
    return deltas_.size();
  }

 private:
  std::vector<SlotDelta> deltas_;
  DeltaApplier applier_;
  std::size_t index_ = 0;
};

}  // namespace eotora::sim
