// Aggregation of per-slot results into the time-averaged quantities the
// paper reports (time-average latency, energy cost, queue backlog).
#pragma once

#include <vector>

#include "core/dpp.h"
#include "util/stats.h"

namespace eotora::core {

class MetricsCollector {
 public:
  void record(const DppSlotResult& slot);

  [[nodiscard]] std::size_t slots() const { return latency_.count(); }
  [[nodiscard]] double average_latency() const { return latency_.mean(); }
  [[nodiscard]] double average_energy_cost() const { return cost_.mean(); }
  [[nodiscard]] double average_queue() const { return queue_.mean(); }
  [[nodiscard]] double max_queue() const { return queue_.max(); }
  [[nodiscard]] double average_theta() const { return theta_.mean(); }
  [[nodiscard]] double max_latency() const { return latency_.max(); }

  // Per-slot latency percentile over the recorded series (q in [0, 100]).
  // Requires at least one recorded slot.
  [[nodiscard]] double latency_percentile(double q) const;

  // Raw per-slot series for plotting-style benches.
  [[nodiscard]] const std::vector<double>& latency_series() const {
    return latency_series_;
  }
  [[nodiscard]] const std::vector<double>& queue_series() const {
    return queue_series_;
  }
  [[nodiscard]] const std::vector<double>& cost_series() const {
    return cost_series_;
  }

 private:
  util::RunningStats latency_;
  util::RunningStats cost_;
  util::RunningStats queue_;
  util::RunningStats theta_;
  std::vector<double> latency_series_;
  std::vector<double> queue_series_;
  std::vector<double> cost_series_;
};

}  // namespace eotora::core
