// Differential harness: the auditor cross-checks the online DPP controller
// against the certified offline oracles (brute force, branch & bound) on
// fuzzed tiny instances — every decision either side produces must pass the
// full P1 constraint audit, the two oracles must agree, and the online
// solution can never beat the certified per-slot optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/bnb.h"
#include "core/brute_force.h"
#include "core/dpp.h"
#include "core/latency.h"
#include "core/lemma1.h"
#include "core/wcg.h"
#include "energy/quadratic_energy.h"
#include "sim/audit.h"
#include "topology/builder.h"
#include "util/rng.h"

namespace eotora {
namespace {

// Deliberately tinier than the incremental-fuzz generator: brute force
// enumerates every profile, so option counts must stay small (<= ~3 servers,
// <= 3 stations, 3-5 devices).
std::shared_ptr<topology::Topology> tiny_random_topology(util::Rng& rng) {
  topology::TopologyBuilder builder;
  builder.set_region({1000.0, 1000.0});
  const std::size_t clusters = 1 + rng.index(2);
  std::vector<topology::ClusterId> cluster_ids;
  for (std::size_t m = 0; m < clusters; ++m) {
    cluster_ids.push_back(builder.add_cluster(
        "c" + std::to_string(m),
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)}));
  }
  auto model = std::make_shared<energy::QuadraticEnergy>(
      rng.uniform(1.0, 8.0), rng.uniform(0.0, 5.0), rng.uniform(5.0, 40.0));
  std::size_t servers = 0;
  for (std::size_t m = 0; m < clusters; ++m) {
    const std::size_t count = 1 + rng.index(2);
    for (std::size_t j = 0; j < count; ++j) {
      const double lo = rng.uniform(1.0, 2.5);
      builder.add_server("s" + std::to_string(servers++), cluster_ids[m],
                         rng.bernoulli(0.5) ? 64 : 128, lo,
                         lo + rng.uniform(0.5, 1.5), model);
    }
  }
  const std::size_t stations = 2 + rng.index(2);
  for (std::size_t k = 0; k < stations; ++k) {
    std::vector<topology::ClusterId> connected;
    for (auto id : cluster_ids) {
      if (rng.bernoulli(0.6)) connected.push_back(id);
    }
    if (connected.empty()) connected.push_back(rng.pick(cluster_ids));
    builder.add_base_station(
        "b" + std::to_string(k),
        {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)},
        topology::Band::kLow, 3000.0, rng.uniform(50e6, 100e6),
        rng.uniform(0.5e9, 1e9), 10.0, connected);
  }
  const std::size_t devices = 3 + rng.index(3);
  for (std::size_t i = 0; i < devices; ++i) {
    builder.add_device("d" + std::to_string(i),
                       {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  return std::make_shared<topology::Topology>(builder.build());
}

core::SlotState sparse_state(const topology::Topology& topo, util::Rng& rng) {
  core::SlotState state;
  state.slot = 0;
  const std::size_t devices = topo.num_devices();
  const std::size_t stations = topo.num_base_stations();
  state.task_cycles.resize(devices);
  state.data_bits.resize(devices);
  state.channel.assign(devices, std::vector<double>(stations, 0.0));
  for (std::size_t i = 0; i < devices; ++i) {
    state.task_cycles[i] = rng.uniform(1e7, 5e8);
    state.data_bits[i] = rng.uniform(1e6, 2e7);
    bool any = false;
    for (std::size_t k = 0; k < stations; ++k) {
      if (rng.bernoulli(0.6)) {
        state.channel[i][k] = rng.uniform(15.0, 50.0);
        any = true;
      }
    }
    if (!any) {
      state.channel[i][rng.index(stations)] = rng.uniform(15.0, 50.0);
    }
  }
  state.price_per_mwh = rng.uniform(5.0, 300.0);
  return state;
}

// Packages a P2-A profile at fixed frequencies as a complete slot result
// (Lemma-1 allocation, recomputed metrics, exact queue step) so the
// feasibility auditor can judge an oracle solution like any other.
core::DppSlotResult slot_from_profile(const core::Instance& instance,
                                      const core::SlotState& state,
                                      const core::WcgProblem& problem,
                                      const core::Profile& profile,
                                      const core::Frequencies& frequencies,
                                      double queue_before) {
  core::DppSlotResult result;
  result.decision.assignment = problem.to_assignment(profile);
  result.decision.frequencies = frequencies;
  result.decision.allocation =
      core::optimal_allocation(instance, state, result.decision.assignment);
  result.latency = core::latency_under_allocation(
      instance, state, result.decision.assignment, frequencies,
      result.decision.allocation);
  result.energy_cost =
      instance.energy_cost(frequencies, state.price_per_mwh);
  result.theta = result.energy_cost - instance.budget_per_slot();
  result.queue_before = queue_before;
  result.queue_after = std::max(queue_before + result.theta, 0.0);
  return result;
}

bool rel_close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({std::abs(a), std::abs(b), 1.0});
}

class Differential : public ::testing::TestWithParam<int> {};

// One fuzzed slot per seed: DPP decides online, both oracles solve the same
// P2-A instance offline, and every artifact is audited.
TEST_P(Differential, DppAndOraclesAgreeAndPassTheAudit) {
  util::Rng rng(80'000 + GetParam());
  const auto topo = tiny_random_topology(rng);
  const std::size_t devices = topo->num_devices();
  core::Instance instance(
      topo, core::Instance::random_sigma(devices, topo->num_servers(), rng),
      rng.uniform(0.1, 5.0));
  const core::SlotState state = sparse_state(*topo, rng);

  // Online: a few DPP slots, audited end to end (queue ledger included).
  core::DppConfig dpp_config;
  dpp_config.v = rng.uniform(10.0, 500.0);
  core::DppController controller(instance, dpp_config);
  sim::SlotAuditor dpp_auditor(instance);
  core::DppSlotResult dpp_result;
  for (std::size_t t = 0; t < 3; ++t) {
    core::SlotState slot_state = state;
    slot_state.slot = t;
    dpp_result = controller.step(slot_state, rng);
    dpp_auditor.observe(slot_state, dpp_result);
  }
  ASSERT_TRUE(dpp_auditor.report().clean()) << dpp_auditor.report().summary();

  // Offline: both certified oracles on the SAME fixed-frequency P2-A game
  // the last DPP slot implicitly solved.
  const core::WcgProblem problem(instance, state,
                                 dpp_result.decision.frequencies);
  const core::SolveResult exhaustive = core::brute_force(problem);
  const core::SolveResult bnb = core::branch_and_bound(problem);
  ASSERT_TRUE(exhaustive.optimal);
  ASSERT_TRUE(bnb.optimal);
  // Two independent searches must certify the same optimum.
  EXPECT_TRUE(rel_close(exhaustive.cost, bnb.cost, 1e-9))
      << "brute=" << exhaustive.cost << " bnb=" << bnb.cost;
  EXPECT_TRUE(
      rel_close(problem.total_cost(bnb.profile), exhaustive.cost, 1e-9));

  // The optimal profile, packaged as a slot decision, is audit-clean.
  const core::DppSlotResult optimal_slot =
      slot_from_profile(instance, state, problem, exhaustive.profile,
                        dpp_result.decision.frequencies, 0.0);
  const sim::AuditReport optimal_report =
      sim::audit_slot(instance, state, optimal_slot);
  EXPECT_TRUE(optimal_report.clean()) << optimal_report.summary();

  // Online never beats the certified optimum at the same frequencies.
  EXPECT_GE(dpp_result.latency, exhaustive.cost - 1e-9 * exhaustive.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 25));

}  // namespace
}  // namespace eotora
