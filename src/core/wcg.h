// The Weighted Congestion Game view of the P2-A problem (paper §V-B).
//
// After Lemma 1 eliminates the divisible resource-allocation variables, the
// per-slot latency becomes  T_t = Σ_r m_r P_r(z)²  over the resource set
//   R = {C_n | servers} ∪ {B^A_k | base stations} ∪ {B^F_k | base stations}
// with per-resource loads P_r(z) = Σ_{i uses r} p_{i,r} and weights
//   m_{C_n}  = 1 / (cores_n · ω_n · 1e9)   p_{i,C_n}  = sqrt(f_i / σ_{i,n})
//   m_{B^A_k} = 1 / W^A_k                  p_{i,B^A_k} = sqrt(d_i / h_{i,k})
//   m_{B^F_k} = 1 / W^F_k                  p_{i,B^F_k} = sqrt(d_i / h^F_k)
// (This is the form consistent with Eqs. (18)-(19); see DESIGN.md for the
// paper's §V-B typo.)
//
// A device's strategy is an Option: a feasible (base station, server) pair —
// the BS must cover the device (h > 0) and the server must be reachable over
// that BS's fronthaul (constraint (3)). The player cost is
//   T_i(z) = Σ_{r ∈ R(z_i)} m_r p_{i,r} P_r(z),
// and Σ_i T_i = T_t, so the game's social cost is exactly the latency.
//
// The game admits the exact potential
//   Φ(z) = ½ Σ_r m_r (P_r(z)² + Σ_{i∈I_r} p_{i,r}²),
// i.e. ΔΦ equals the mover's cost change for every unilateral deviation —
// this is what makes CGBA's best-response dynamics terminate.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/rng.h"

namespace eotora::core {

// One feasible (base station, server) choice for a device, with its resource
// indices and weights precomputed.
struct Option {
  std::size_t bs = 0;
  std::size_t server = 0;
  std::size_t r_compute = 0;
  std::size_t r_access = 0;
  std::size_t r_fronthaul = 0;
  double p_compute = 0.0;
  double p_access = 0.0;
  double p_fronthaul = 0.0;
};

// z: per-device index into that device's option list.
using Profile = std::vector<std::size_t>;

class WcgProblem {
 public:
  // Builds option lists and resource weights from the instance, the current
  // slot state, and the current frequencies. Throws std::invalid_argument if
  // any device has no feasible option (no covering BS with a usable channel).
  WcgProblem(const Instance& instance, const SlotState& state,
             const Frequencies& frequencies);

  [[nodiscard]] std::size_t num_devices() const { return options_.size(); }
  [[nodiscard]] std::size_t num_resources() const { return weights_.size(); }
  [[nodiscard]] const std::vector<Option>& options(std::size_t device) const;
  [[nodiscard]] double weight(std::size_t resource) const;

  // Re-derives the compute-resource weights for new frequencies; option
  // lists and p-values are frequency-independent and stay valid.
  void set_frequencies(const Instance& instance,
                       const Frequencies& frequencies);

  // Uniform random feasible profile.
  [[nodiscard]] Profile random_profile(util::Rng& rng) const;

  // Social cost T_t(z) = Σ_r m_r P_r(z)² — evaluates from scratch.
  [[nodiscard]] double total_cost(const Profile& z) const;

  // Player i's cost T_i(z) — evaluates from scratch (solvers use LoadTracker
  // for incremental evaluation).
  [[nodiscard]] double player_cost(const Profile& z, std::size_t device) const;

  // Exact potential Φ(z).
  [[nodiscard]] double potential(const Profile& z) const;

  // Decodes a profile into the (x, y) Assignment.
  [[nodiscard]] Assignment to_assignment(const Profile& z) const;

  // Encodes an Assignment back into a profile. Throws if the assignment uses
  // a pair that is not a feasible option.
  [[nodiscard]] Profile to_profile(const Assignment& assignment) const;

  // A lower bound on the social cost of ANY profile: every device must pay
  // at least its own-weight cost m_r p_{i,r}² on the resources of its best
  // option (loads only grow when others share). Used by branch & bound and
  // reported alongside heuristic solutions.
  [[nodiscard]] double singleton_lower_bound() const;

 private:
  [[nodiscard]] std::vector<double> loads(const Profile& z) const;

  std::vector<std::vector<Option>> options_;  // per device
  std::vector<double> weights_;               // m_r
  std::size_t num_servers_ = 0;
  std::size_t num_base_stations_ = 0;
};

// Incremental load bookkeeping for search algorithms (CGBA, MCBA, B&B).
// Tracks P_r for a current profile and answers player costs / best responses
// in O(options(i)) without touching other devices.
class LoadTracker {
 public:
  // Binds to `problem` (must outlive the tracker) at the given profile.
  LoadTracker(const WcgProblem& problem, Profile profile);

  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] double total_cost() const;

  // Player i's current cost given the tracked loads.
  [[nodiscard]] double player_cost(std::size_t device) const;

  // Cost player i would pay after unilaterally switching to `option_index`
  // (others fixed).
  [[nodiscard]] double cost_if_moved(std::size_t device,
                                     std::size_t option_index) const;

  struct BestResponse {
    std::size_t option_index = 0;
    double cost = 0.0;
  };
  // Minimum-cost unilateral deviation for player i (includes staying put).
  [[nodiscard]] BestResponse best_response(std::size_t device) const;

  // Switches player i to `option_index`, updating loads incrementally.
  void move(std::size_t device, std::size_t option_index);

  [[nodiscard]] double potential() const;

 private:
  void add_device(std::size_t device, const Option& option, double sign);

  const WcgProblem* problem_;
  Profile profile_;
  std::vector<double> loads_;         // P_r
  std::vector<double> load_squares_;  // Σ_{i∈I_r} p_{i,r}² (for potential)
};

}  // namespace eotora::core
