#include "sim/pipeline/assemblies.h"

#include <utility>
#include <vector>

#include "sim/pipeline/graph.h"
#include "sim/pipeline/stages.h"
#include "util/check.h"
#include "util/table.h"

namespace eotora::sim::pipeline {

namespace {

std::string dpp_label(core::P2aSolverKind solver) {
  switch (solver) {
    case core::P2aSolverKind::kCgba:
      return "BDMA-based DPP";
    case core::P2aSolverKind::kMcba:
      return "MCBA-based DPP";
    case core::P2aSolverKind::kRopt:
      return "ROPT-based DPP";
  }
  return "DPP";
}

}  // namespace

std::unique_ptr<Policy> make_dpp_pipeline(const core::Instance& instance,
                                          const core::DppConfig& config) {
  // The same preconditions DppController and bdma() enforce.
  EOTORA_REQUIRE_MSG(config.v > 0.0, "V=" << config.v);
  EOTORA_REQUIRE_MSG(config.initial_queue >= 0.0,
                     "Q(1)=" << config.initial_queue);
  EOTORA_REQUIRE(config.bdma.iterations >= 1);

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StateInStage>());
  stages.push_back(std::make_unique<QueueUpdateStage>(config.initial_queue));
  stages.push_back(std::make_unique<P2aSolveStage>(config.bdma));
  stages.push_back(std::make_unique<P2bSolveStage>(config.v, config.bdma));
  stages.push_back(std::make_unique<AuditTapStage>());
  stages.push_back(std::make_unique<DppDecisionOutStage>());
  LoopSpec loop;
  loop.first = 2;  // P2aSolve
  loop.last = 3;   // P2bSolve
  loop.iterations = config.bdma.iterations;
  loop.span = "dpp/bdma";
  loop.iteration_span = "bdma/iteration";
  return std::make_unique<PolicyGraph>(dpp_label(config.bdma.solver),
                                       instance, std::move(stages), loop);
}

std::unique_ptr<Policy> make_greedy_budget_pipeline(
    const core::Instance& instance, const core::CgbaConfig& cgba) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StateInStage>());
  stages.push_back(std::make_unique<BudgetFrequencyStage>());
  stages.push_back(std::make_unique<CgbaAssignStage>(cgba));
  stages.push_back(std::make_unique<AuditTapStage>());
  stages.push_back(std::make_unique<CgbaDecisionOutStage>());
  return std::make_unique<PolicyGraph>("Greedy per-slot budget", instance,
                                       std::move(stages));
}

std::unique_ptr<Policy> make_fixed_frequency_pipeline(
    const core::Instance& instance, double fraction,
    const core::CgbaConfig& cgba) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StateInStage>());
  stages.push_back(std::make_unique<FixedFrequencyStage>(instance, fraction));
  stages.push_back(std::make_unique<CgbaAssignStage>(cgba));
  stages.push_back(std::make_unique<AuditTapStage>());
  stages.push_back(std::make_unique<CgbaDecisionOutStage>());
  return std::make_unique<PolicyGraph>(
      "Fixed-frequency CGBA (fraction=" + util::format_double(fraction, 2) +
          ")",
      instance, std::move(stages));
}

std::unique_ptr<Policy> make_beta_only_pipeline(
    const core::Instance& instance, const core::BetaOnlyConfig& config) {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StateInStage>());
  stages.push_back(std::make_unique<BetaOracleStage>(config));
  stages.push_back(std::make_unique<AuditTapStage>());
  stages.push_back(std::make_unique<BetaDecisionOutStage>());
  return std::make_unique<PolicyGraph>("Beta-only (per-slot budget)",
                                       instance, std::move(stages));
}

std::unique_ptr<Policy> make_mpc_pipeline(const core::Instance& instance,
                                          const MpcConfig& config) {
  // The same preconditions MpcPolicy enforces.
  EOTORA_REQUIRE(config.window >= 1);
  EOTORA_REQUIRE(config.period >= 1);
  EOTORA_REQUIRE(config.bisection_iterations >= 1);
  EOTORA_REQUIRE(config.max_multiplier > 0.0);

  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StateInStage>());
  stages.push_back(std::make_unique<TrendObserveStage>(config));
  stages.push_back(std::make_unique<MinFrequencyStage>());
  stages.push_back(std::make_unique<CgbaAssignStage>(config.cgba));
  stages.push_back(std::make_unique<MpcPlanStage>(config));
  stages.push_back(std::make_unique<AuditTapStage>());
  stages.push_back(std::make_unique<MpcDecisionOutStage>());
  return std::make_unique<PolicyGraph>("Receding-horizon MPC", instance,
                                       std::move(stages));
}

}  // namespace eotora::sim::pipeline
