file(REMOVE_RECURSE
  "CMakeFiles/fig6_cgba_lambda.dir/fig6_cgba_lambda.cpp.o"
  "CMakeFiles/fig6_cgba_lambda.dir/fig6_cgba_lambda.cpp.o.d"
  "fig6_cgba_lambda"
  "fig6_cgba_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cgba_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
