// Lightweight precondition / invariant checking for the eotora library.
//
// Following the Core Guidelines (I.6 / I.8) we express contracts explicitly.
// Violations throw std::invalid_argument (preconditions) or std::logic_error
// (internal invariants) with a message carrying the failed expression and
// location, so callers and tests can assert on misuse without aborting the
// whole process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eotora::util {

// Builds the "<file>:<line>: <kind> failed: <expr>" diagnostic message.
// `detail` is appended when non-empty.
[[nodiscard]] std::string check_message(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& detail);

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& detail);

[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& detail);

}  // namespace eotora::util

// Precondition: caller passed bad arguments -> std::invalid_argument.
#define EOTORA_REQUIRE(expr)                                                 \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::eotora::util::throw_precondition(#expr, __FILE__, __LINE__, "");     \
    }                                                                        \
  } while (false)

// Precondition with a streamed extra message:
//   EOTORA_REQUIRE_MSG(n > 0, "n=" << n);
#define EOTORA_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream eotora_oss_;                                        \
      eotora_oss_ << msg;                                                    \
      ::eotora::util::throw_precondition(#expr, __FILE__, __LINE__,          \
                                         eotora_oss_.str());                 \
    }                                                                        \
  } while (false)

// Internal invariant: a bug in this library if it fires -> std::logic_error.
#define EOTORA_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::eotora::util::throw_invariant(#expr, __FILE__, __LINE__, "");        \
    }                                                                        \
  } while (false)
