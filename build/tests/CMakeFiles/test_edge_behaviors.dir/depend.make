# Empty dependencies file for test_edge_behaviors.
# This may be replaced when dependencies are built.
