#include "math/minimize1d.h"

#include <cmath>

#include "util/check.h"

namespace eotora::math {

namespace {
constexpr double kGoldenRatio = 0.6180339887498949;  // (sqrt(5) - 1) / 2
}

Minimize1DResult golden_section(const std::function<double(double)>& f,
                                double lo, double hi, double tolerance,
                                int max_iterations) {
  EOTORA_REQUIRE_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  EOTORA_REQUIRE(tolerance > 0.0);
  Minimize1DResult result;
  if (hi - lo <= tolerance) {
    result.x = 0.5 * (lo + hi);
    result.value = f(result.x);
    result.evaluations = 1;
    return result;
  }
  double a = lo;
  double b = hi;
  double x1 = b - kGoldenRatio * (b - a);
  double x2 = a + kGoldenRatio * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int evals = 2;
  for (int iter = 0; iter < max_iterations && (b - a) > tolerance; ++iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGoldenRatio * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGoldenRatio * (b - a);
      f2 = f(x2);
    }
    ++evals;
  }
  result.x = 0.5 * (a + b);
  result.value = f(result.x);
  result.evaluations = evals + 1;
  return result;
}

Minimize1DResult derivative_bisection(const std::function<double(double)>& f,
                                      const std::function<double(double)>& df,
                                      double lo, double hi, double tolerance,
                                      int max_iterations) {
  EOTORA_REQUIRE_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  EOTORA_REQUIRE(tolerance > 0.0);
  Minimize1DResult result;
  int evals = 0;
  const double dlo = df(lo);
  const double dhi = df(hi);
  evals += 2;
  if (dlo >= 0.0) {
    // Function is nondecreasing on the whole interval: minimum at lo.
    result.x = lo;
  } else if (dhi <= 0.0) {
    // Nonincreasing everywhere: minimum at hi.
    result.x = hi;
  } else {
    double a = lo;
    double b = hi;
    for (int iter = 0; iter < max_iterations && (b - a) > tolerance; ++iter) {
      const double mid = 0.5 * (a + b);
      const double dm = df(mid);
      ++evals;
      if (dm < 0.0) {
        a = mid;
      } else {
        b = mid;
      }
    }
    result.x = 0.5 * (a + b);
  }
  result.value = f(result.x);
  result.evaluations = evals + 1;
  return result;
}

Minimize1DResult brent(const std::function<double(double)>& f, double lo,
                       double hi, double tolerance, int max_iterations) {
  EOTORA_REQUIRE_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  EOTORA_REQUIRE(tolerance > 0.0);
  // Standard Brent minimization (Numerical-Recipes-style structure).
  const double eps = 1e-12;
  double a = lo;
  double b = hi;
  double x = a + kGoldenRatio * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;
  int evals = 1;
  for (int iter = 0; iter < max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = tolerance + eps * std::fabs(x);
    if (std::fabs(x - m) <= 2.0 * tol - 0.5 * (b - a)) break;
    double p = 0.0;
    double q = 0.0;
    double r = 0.0;
    bool use_golden = true;
    if (std::fabs(e) > tol) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      r = (x - w) * (fx - fv);
      q = (x - v) * (fx - fw);
      p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < 2.0 * tol || b - u < 2.0 * tol) {
          d = (x < m) ? tol : -tol;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = (1.0 - kGoldenRatio) * e;
    }
    const double u =
        (std::fabs(d) >= tol) ? x + d : x + ((d > 0.0) ? tol : -tol);
    const double fu = f(u);
    ++evals;
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  Minimize1DResult result;
  result.x = x;
  result.value = fx;
  result.evaluations = evals;
  return result;
}

}  // namespace eotora::math
