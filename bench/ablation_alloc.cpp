// Ablation — how much does Lemma 1's closed-form allocation actually buy,
// and what do the straw-man rules trade away?
//
// The same CGBA assignment is scored under three divisible-resource rules:
// Lemma 1 (square-root proportional, the optimum), demand-proportional
// (linear weights), and equal sharing. Two findings this bench surfaces:
//   1. TOTAL latency: Lemma 1 < {proportional == equal}. The two straw men
//      give IDENTICAL totals — for Σ c_i/s_i, linear-proportional and equal
//      shares both evaluate to n·Σc (see alloc_rules.h) — while the
//      square-root rule attains (Σ√c)².
//   2. FAIRNESS: the straw men distribute that identical total very
//      differently — proportional equalizes per-device latency, equal
//      sharing punishes heavy devices. Reported via per-device max/stddev.
#include <iostream>

#include "bench_common.h"
#include "eotora/eotora.h"

namespace {

struct RuleStats {
  double total = 0.0;
  double worst_device = 0.0;
  double stddev = 0.0;
};

RuleStats score(const eotora::core::Instance& instance,
                const eotora::core::SlotState& state,
                const eotora::core::Assignment& assignment,
                const eotora::core::Frequencies& freq,
                const eotora::core::ResourceAllocation& alloc) {
  using namespace eotora;
  RuleStats stats;
  std::vector<double> per_device;
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    per_device.push_back(core::device_latency_under_allocation(
                             instance, state, assignment, freq, alloc, i)
                             .total());
  }
  for (double latency : per_device) stats.total += latency;
  stats.worst_device = *std::max_element(per_device.begin(),
                                         per_device.end());
  stats.stddev = util::stddev(per_device);
  return stats;
}

}  // namespace

int main() {
  using namespace eotora;
  std::cout << "Ablation: one CGBA assignment under different divisible-"
               "allocation rules (I = 100)\n\n";

  auto c = bench::make_p2a_case(100, /*seed=*/2100);
  const auto& instance = c.scenario->instance();
  const auto freq = instance.max_frequencies();
  const core::WcgProblem problem(instance, c.state, freq);
  util::Rng rng(3);
  const auto cgba = core::cgba(problem, core::CgbaConfig{}, rng);
  const core::Assignment assignment = problem.to_assignment(cgba.profile);

  const RuleStats optimal =
      score(instance, c.state, assignment, freq,
            core::optimal_allocation(instance, c.state, assignment));
  const RuleStats proportional = score(
      instance, c.state, assignment, freq,
      core::demand_proportional_allocation(instance, c.state, assignment));
  const RuleStats equal =
      score(instance, c.state, assignment, freq,
            core::equal_share_allocation(instance, c.state, assignment));

  util::Table table({"rule", "total latency (s)", "worst device (s)",
                     "per-device stddev"});
  table.add_row({"Lemma 1 (sqrt-proportional)",
                 util::format_double(optimal.total, 4),
                 util::format_double(optimal.worst_device, 4),
                 util::format_double(optimal.stddev, 4)});
  table.add_row({"demand-proportional",
                 util::format_double(proportional.total, 4),
                 util::format_double(proportional.worst_device, 4),
                 util::format_double(proportional.stddev, 4)});
  table.add_row({"equal share", util::format_double(equal.total, 4),
                 util::format_double(equal.worst_device, 4),
                 util::format_double(equal.stddev, 4)});
  table.print(std::cout);

  std::cout << "\nreading: the straw-man TOTALS coincide (the n*sum(c) "
               "identity, ratio "
            << util::format_double(equal.total / proportional.total, 6)
            << ") and both exceed Lemma 1 by "
            << util::format_double((equal.total / optimal.total - 1.0) * 100,
                                   2)
            << "%; fairness differs sharply — proportional flattens "
               "per-device latency, equal sharing hits heavy devices.\n";
  return 0;
}
