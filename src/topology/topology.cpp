#include "topology/topology.h"

#include <algorithm>

#include "util/check.h"

namespace eotora::topology {

Topology::Topology(std::vector<BaseStation> base_stations,
                   std::vector<Cluster> clusters, std::vector<Server> servers,
                   std::vector<MobileDevice> devices, Region region)
    : base_stations_(std::move(base_stations)),
      clusters_(std::move(clusters)),
      servers_(std::move(servers)),
      devices_(std::move(devices)),
      region_(region) {
  EOTORA_REQUIRE(!base_stations_.empty());
  EOTORA_REQUIRE(!clusters_.empty());
  EOTORA_REQUIRE(!servers_.empty());
  EOTORA_REQUIRE(region_.width > 0.0 && region_.height > 0.0);

  // Ids must be dense and positional: entity j has id j.
  for (std::size_t k = 0; k < base_stations_.size(); ++k) {
    EOTORA_REQUIRE_MSG(base_stations_[k].id.value == k,
                       "base station at index " << k << " has id "
                                                << base_stations_[k].id.value);
    const auto& bs = base_stations_[k];
    EOTORA_REQUIRE_MSG(bs.coverage_radius_m > 0.0, bs.name);
    EOTORA_REQUIRE_MSG(bs.access_bandwidth_hz > 0.0, bs.name);
    EOTORA_REQUIRE_MSG(bs.fronthaul_bandwidth_hz > 0.0, bs.name);
    EOTORA_REQUIRE_MSG(bs.fronthaul_spectral_efficiency > 0.0, bs.name);
    EOTORA_REQUIRE_MSG(!bs.connected_clusters.empty(),
                       "base station " << bs.name
                                       << " reaches no server cluster");
    for (ClusterId c : bs.connected_clusters) {
      EOTORA_REQUIRE_MSG(c.value < clusters_.size(),
                         "base station " << bs.name
                                         << " references missing cluster "
                                         << c.value);
    }
  }
  for (std::size_t m = 0; m < clusters_.size(); ++m) {
    EOTORA_REQUIRE(clusters_[m].id.value == m);
    EOTORA_REQUIRE_MSG(!clusters_[m].servers.empty(),
                       "cluster " << clusters_[m].name << " is empty");
  }
  std::vector<bool> server_claimed(servers_.size(), false);
  for (const auto& cluster : clusters_) {
    for (ServerId s : cluster.servers) {
      EOTORA_REQUIRE_MSG(s.value < servers_.size(),
                         "cluster " << cluster.name
                                    << " references missing server "
                                    << s.value);
      EOTORA_REQUIRE_MSG(!server_claimed[s.value],
                         "server " << s.value << " is in two clusters");
      server_claimed[s.value] = true;
      EOTORA_REQUIRE_MSG(servers_[s.value].cluster == cluster.id,
                         "server " << servers_[s.value].name
                                   << " disagrees about its cluster");
    }
  }
  for (std::size_t n = 0; n < servers_.size(); ++n) {
    EOTORA_REQUIRE(servers_[n].id.value == n);
    EOTORA_REQUIRE_MSG(server_claimed[n],
                       "server " << servers_[n].name << " is in no cluster");
    const auto& server = servers_[n];
    EOTORA_REQUIRE_MSG(server.cores > 0, server.name);
    EOTORA_REQUIRE_MSG(
        server.freq_min_ghz > 0.0 && server.freq_min_ghz <= server.freq_max_ghz,
        server.name << ": F^L=" << server.freq_min_ghz
                    << " F^U=" << server.freq_max_ghz);
    EOTORA_REQUIRE_MSG(server.energy_model != nullptr,
                       server.name << " has no energy model");
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    EOTORA_REQUIRE(devices_[i].id.value == i);
    devices_[i].position = region_.clamp(devices_[i].position);
  }

  // Precompute the fronthaul reachability map N(.) used by constraint (3).
  reachable_.resize(base_stations_.size());
  for (std::size_t k = 0; k < base_stations_.size(); ++k) {
    for (ClusterId c : base_stations_[k].connected_clusters) {
      const auto& members = clusters_[c.value].servers;
      reachable_[k].insert(reachable_[k].end(), members.begin(),
                           members.end());
    }
    std::sort(reachable_[k].begin(), reachable_[k].end());
    reachable_[k].erase(
        std::unique(reachable_[k].begin(), reachable_[k].end()),
        reachable_[k].end());
  }
}

const BaseStation& Topology::base_station(BaseStationId id) const {
  EOTORA_REQUIRE(id.value < base_stations_.size());
  return base_stations_[id.value];
}

const Cluster& Topology::cluster(ClusterId id) const {
  EOTORA_REQUIRE(id.value < clusters_.size());
  return clusters_[id.value];
}

const Server& Topology::server(ServerId id) const {
  EOTORA_REQUIRE(id.value < servers_.size());
  return servers_[id.value];
}

const MobileDevice& Topology::device(DeviceId id) const {
  EOTORA_REQUIRE(id.value < devices_.size());
  return devices_[id.value];
}

bool Topology::covers(BaseStationId k, Point position) const {
  const auto& bs = base_station(k);
  return distance(bs.position, position) <= bs.coverage_radius_m;
}

std::vector<BaseStationId> Topology::covering_base_stations(
    Point position) const {
  std::vector<BaseStationId> covering;
  for (const auto& bs : base_stations_) {
    if (covers(bs.id, position)) covering.push_back(bs.id);
  }
  return covering;
}

const std::vector<ServerId>& Topology::reachable_servers(
    BaseStationId k) const {
  EOTORA_REQUIRE(k.value < reachable_.size());
  return reachable_[k.value];
}

void Topology::set_device_position(DeviceId i, Point position) {
  EOTORA_REQUIRE(i.value < devices_.size());
  devices_[i.value].position = region_.clamp(position);
}

}  // namespace eotora::topology
