#include "math/linsolve.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace eotora::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  EOTORA_REQUIRE(rows > 0 && cols > 0);
}

double& Matrix::at(std::size_t r, std::size_t c) {
  EOTORA_REQUIRE_MSG(r < rows_ && c < cols_, "r=" << r << " c=" << c);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  EOTORA_REQUIRE_MSG(r < rows_ && c < cols_, "r=" << r << " c=" << c);
  return data_[r * cols_ + c];
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  EOTORA_REQUIRE(a.cols() == n);
  EOTORA_REQUIRE(b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest-magnitude entry to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    if (std::fabs(a.at(pivot, col)) < 1e-14) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      sum -= a.at(ri, c) * x[c];
    }
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

}  // namespace eotora::math
