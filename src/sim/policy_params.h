// PolicyParams — the sweepable policy knobs — and the ONE translation from
// them into per-policy solver configs.
//
// Before this header existed, the registry's builder lambdas were the only
// place PolicyParams became DppConfig/BetaOnlyConfig/..., so any second
// construction path (and the pipeline assemblies are exactly that) would
// have had to duplicate the field mapping and could silently drift. Both
// sim/registry.cpp and sim/pipeline/assemblies.cpp now consume the
// *_config_from helpers below; a default or mapping changed here changes
// every construction path at once.
#pragma once

#include <cstddef>

#include "core/beta_only.h"
#include "core/bdma.h"
#include "core/dpp.h"
#include "sim/mpc_policy.h"

namespace eotora::sim {

// The constructor knobs a sweep varies. Defaults match the paper scenario
// (V = 100, z = 5) with a cold virtual queue.
struct PolicyParams {
  double v = 100.0;                  // Lyapunov penalty weight
  double initial_queue = 0.0;        // Q(1) warm start
  std::size_t bdma_iterations = 5;   // the paper's z
  std::size_t mcba_iterations = 3000;
  double fixed_fraction = 1.0;       // for "fixed-frequency"
  // 0 = global P2-A solves (historical behaviour). >= 1 routes every CGBA
  // / MCBA P2-A solve through the connected-component sharded drivers
  // (core/sharded) with at most this many pool workers. Results are
  // bit-identical for every value; only wall-clock and the per-shard
  // effort breakdown in the artifact change. dpp_config_from throws for
  // solvers without a sharded path (ROPT).
  std::size_t shard_workers = 0;
  MpcConfig mpc;                     // for "mpc"
};

// DppConfig for the "dpp-*" family with the given inner P2-A solver.
[[nodiscard]] core::DppConfig dpp_config_from(const PolicyParams& params,
                                              core::P2aSolverKind solver);

// BetaOnlyConfig for "beta-only".
[[nodiscard]] core::BetaOnlyConfig beta_only_config_from(
    const PolicyParams& params);

// CgbaConfig for the CGBA-assignment baselines ("greedy-budget",
// "fixed-*"): the registry has always used the plain defaults here.
[[nodiscard]] core::CgbaConfig baseline_cgba_config_from(
    const PolicyParams& params);

// MpcConfig for "mpc".
[[nodiscard]] MpcConfig mpc_config_from(const PolicyParams& params);

}  // namespace eotora::sim
