// Shared per-lane routines for the kernel backends. Every SIMD backend falls
// back to these for scan/bisection tails and for the order-sensitive exact
// reductions, so the scalar semantics live in exactly one place.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/kernels/kernels.h"

namespace eotora::core::kernels::detail {

// Backend factories (each TU registers its backend here; a factory returns
// nullptr when the backend is not compiled in on this target).
[[nodiscard]] const Backend* scalar_backend();
[[nodiscard]] const Backend* avx2_backend();
[[nodiscard]] const Backend* neon_backend();

inline void sqrt_div_scalar(const double* num, const double* den, double* out,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::sqrt(num[i] / den[i]);
}

inline void div_gather_scalar(const double* num, const double* den,
                              const std::uint32_t* key, double* out,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = num[i] / den[key[i]];
}

inline double weighted_sumsq_scalar(const double* w, const double* x,
                                    std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += w[i] * x[i] * x[i];
  return sum;
}

// One scan step: candidate entry a with cost c against the running champion.
// Mirrors LoadTracker::best_response's strict-< update (first occurrence of
// the minimum wins).
inline void scan_consider(std::uint32_t a, double c, double& best_cost,
                          std::uint32_t& best_entry) {
  if (c < best_cost) {
    best_cost = c;
    best_entry = a;
  }
}

inline ScanHit scan_scalar(const double* tc,
                           const std::uint32_t* server_of_entry,
                           const ScanGroup* groups, std::size_t num_groups,
                           const double* ta, const double* tf,
                           std::uint32_t skip_entry, double bound, bool fast) {
  double best_cost = bound;
  std::uint32_t best_entry = kNoEntry;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const ScanGroup& grp = groups[g];
    const double a_term = ta[grp.bs];
    const double f_term = tf[grp.bs];
    if (fast) {
      // Pre-combined access + fronthaul term: one addition per entry. Only
      // legal under fast-math — the exact path keeps the left-associated
      // (t_compute + t_access) + t_fronthaul rounding of cost_if_moved.
      const double af = a_term + f_term;
      for (std::uint32_t a = grp.begin; a < grp.end; ++a) {
        if (a == skip_entry) continue;
        scan_consider(a, tc[server_of_entry[a]] + af, best_cost, best_entry);
      }
    } else {
      for (std::uint32_t a = grp.begin; a < grp.end; ++a) {
        if (a == skip_entry) continue;
        const double c = (tc[server_of_entry[a]] + a_term) + f_term;
        scan_consider(a, c, best_cost, best_entry);
      }
    }
  }
  return {best_entry, best_cost};
}

// d/dw of the per-server P2-B objective with the affine energy-model
// derivative slope·w + intercept. Operation order matches the open-coded
// lambda in core/p2b.cpp exactly:
//   -V·A / (cores·w·w·1e9) + scale · ((slope·w + intercept) · cores / 4.0)
// (the trailing · cores / 4.0 is Server::power_derivative_watts' scaling).
inline double p2b_derivative_affine(double neg_va, double cores, double scale,
                                    double d_slope, double d_intercept,
                                    double w) {
  const double den = cores * w * w * 1e9;
  const double pd = d_slope * w + d_intercept;
  const double watts = pd * cores / 4.0;
  return neg_va / den + scale * watts;
}

// One derivative bisection, reproducing math::derivative_bisection's
// endpoint tests, midpoint updates, and iteration cutoff bit-for-bit.
template <typename DerivFn>
inline double p2b_bisect_lane(DerivFn&& df, double lo, double hi,
                              double tolerance, int max_iterations) {
  const double dlo = df(lo);
  if (dlo >= 0.0) return lo;
  const double dhi = df(hi);
  if (dhi <= 0.0) return hi;
  double a = lo;
  double b = hi;
  for (int iter = 0; iter < max_iterations && (b - a) > tolerance; ++iter) {
    const double mid = 0.5 * (a + b);
    if (df(mid) < 0.0) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

inline void p2b_bisect_scalar(const P2bBatchView& batch, double* out_x) {
  for (std::size_t i = 0; i < batch.n; ++i) {
    const double neg_va = batch.neg_va[i];
    const double cores = batch.cores[i];
    const double slope = batch.d_slope[i];
    const double icept = batch.d_intercept[i];
    const double scale = batch.scale;
    out_x[i] = p2b_bisect_lane(
        [=](double w) {
          return p2b_derivative_affine(neg_va, cores, scale, slope, icept, w);
        },
        batch.lo[i], batch.hi[i], batch.tolerance, batch.max_iterations);
  }
}

}  // namespace eotora::core::kernels::detail
