#include "util/strings.h"

#include <gtest/gtest.h>

namespace eotora::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiterGivesWholeString) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, RemovesWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseDouble, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5x"), std::invalid_argument);
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("anything", ""));
}

}  // namespace
}  // namespace eotora::util
