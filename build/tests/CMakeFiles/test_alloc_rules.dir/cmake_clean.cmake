file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_rules.dir/test_alloc_rules.cpp.o"
  "CMakeFiles/test_alloc_rules.dir/test_alloc_rules.cpp.o.d"
  "test_alloc_rules"
  "test_alloc_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
