// β-only slot oracle (the policy class of Lemma 2).
//
// A β-only policy decides from the current state alone. The natural best
// member of that class spends exactly the per-slot budget: minimize T_t
// subject to C_t(Ω, p_t) <= target. We solve it by dualizing the cost
// constraint — bisect the multiplier q in the per-slot problem
//     min_{x,y,Ω}  T_t + q·C_t     (solved by BDMA with V = 1, Q = q)
// until the resulting cost meets the target. This gives:
//   * a strong per-slot reference point for DPP evaluations (how well can
//     ANY queue-free policy do at this budget?), and
//   * the ρ*-style baseline used in the analysis of Theorem 4.
#pragma once

#include "core/bdma.h"
#include "core/instance.h"
#include "util/rng.h"

namespace eotora::core {

struct BetaOnlyResult {
  Assignment assignment;
  Frequencies frequencies;
  double latency = 0.0;
  double energy_cost = 0.0;
  double multiplier = 0.0;  // the dual price q the bisection settled on
};

struct BetaOnlyConfig {
  // Bisection on the multiplier: [0, q_max] with `iterations` halvings.
  double max_multiplier = 1e6;
  int iterations = 40;
  // Accept costs within this relative band of the target.
  double cost_tolerance = 1e-3;
  BdmaConfig bdma;
};

// Minimizes latency subject to C_t <= target_cost (a per-slot budget).
// When even the all-minimum-frequency cost exceeds the target, returns that
// floor decision (the constraint is infeasible at this price).
[[nodiscard]] BetaOnlyResult solve_beta_only(const Instance& instance,
                                             const SlotState& state,
                                             double target_cost,
                                             const BetaOnlyConfig& config,
                                             util::Rng& rng);

}  // namespace eotora::core
