#include "sim/delta.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "util/check.h"

namespace eotora::sim {

namespace {

// Bit-pattern double equality: the delta layer's determinism contract is
// byte-identity, so -0.0 vs 0.0 (and, defensively, NaN payloads) must count
// as a change even though operator== disagrees.
[[nodiscard]] bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

[[nodiscard]] bool rows_equal(const std::vector<double>& a,
                              const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) return false;
  }
  return true;
}

[[nodiscard]] const char* kind_name(DeltaError::Kind kind) {
  switch (kind) {
    case DeltaError::Kind::kOutOfOrderSlot: return "out-of-order slot";
    case DeltaError::Kind::kDuplicateJoin: return "duplicate join";
    case DeltaError::Kind::kUnknownDevice: return "unknown device";
    case DeltaError::Kind::kBadShape: return "bad shape";
    case DeltaError::Kind::kBadValue: return "bad value";
  }
  return "delta error";
}

[[nodiscard]] std::string format_error(DeltaError::Kind kind,
                                       std::uint64_t slot, std::size_t device,
                                       const std::string& message) {
  std::ostringstream oss;
  oss << "delta error [" << kind_name(kind) << "] at slot " << slot;
  if (device != DeltaError::kNoDevice) oss << ", device " << device;
  oss << ": " << message;
  return oss.str();
}

}  // namespace

bool operator==(const SlotDelta& a, const SlotDelta& b) {
  if (a.slot != b.slot || a.has_price != b.has_price) return false;
  if (a.has_price && !bits_equal(a.price, b.price)) return false;
  if (a.joins.size() != b.joins.size() || a.leaves != b.leaves ||
      a.workloads.size() != b.workloads.size() ||
      a.channels.size() != b.channels.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.joins.size(); ++i) {
    const auto& ja = a.joins[i];
    const auto& jb = b.joins[i];
    if (ja.device != jb.device || !bits_equal(ja.task_cycles, jb.task_cycles) ||
        !bits_equal(ja.data_bits, jb.data_bits) ||
        !rows_equal(ja.channel_row, jb.channel_row)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.workloads.size(); ++i) {
    const auto& wa = a.workloads[i];
    const auto& wb = b.workloads[i];
    if (wa.device != wb.device || !bits_equal(wa.task_cycles, wb.task_cycles) ||
        !bits_equal(wa.data_bits, wb.data_bits)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    const auto& ca = a.channels[i];
    const auto& cb = b.channels[i];
    if (ca.device != cb.device || !rows_equal(ca.row, cb.row)) return false;
  }
  return true;
}

DeltaError::DeltaError(Kind kind, std::uint64_t slot, std::size_t device,
                       const std::string& message)
    : std::runtime_error(format_error(kind, slot, device, message)),
      kind_(kind),
      slot_(slot),
      device_(device) {}

DeltaApplier::DeltaApplier(std::size_t devices, std::size_t base_stations,
                           double away_workload_fraction)
    : devices_(devices),
      base_stations_(base_stations),
      away_fraction_(away_workload_fraction) {
  EOTORA_REQUIRE(devices > 0);
  EOTORA_REQUIRE(base_stations > 0);
  EOTORA_REQUIRE_MSG(
      away_workload_fraction > 0.0 && away_workload_fraction <= 1.0,
      "away_workload_fraction=" << away_workload_fraction);
  state_.task_cycles.assign(devices_, 0.0);
  state_.data_bits.assign(devices_, 0.0);
  state_.channel.assign(devices_,
                        std::vector<double>(base_stations_, 0.0));
  active_.assign(devices_, 0);
}

void DeltaApplier::apply(const SlotDelta& delta, core::SlotState& out) {
  const auto fail = [&](DeltaError::Kind kind, std::size_t device,
                        const std::string& message) {
    throw DeltaError(kind, delta.slot, device, message);
  };

  // ---- validation pass: nothing below may mutate state_ ----------------
  if (applied_ > 0 && delta.slot != state_.slot + 1) {
    fail(DeltaError::Kind::kOutOfOrderSlot, DeltaError::kNoDevice,
         "expected slot " + std::to_string(state_.slot + 1) + ", got " +
             std::to_string(delta.slot));
  }
  // The presence set AS THIS DELTA UNFOLDS (joins precede leaves precede
  // updates), so intra-delta conflicts — join twice, leave then update —
  // are caught here too.
  std::vector<char> present(active_);
  const auto check_device = [&](std::size_t device) {
    if (device >= devices_) {
      fail(DeltaError::Kind::kBadShape, device,
           "device index out of range (instance has " +
               std::to_string(devices_) + " devices)");
    }
  };
  const auto check_row = [&](std::size_t device,
                             const std::vector<double>& row) {
    if (row.size() != base_stations_) {
      fail(DeltaError::Kind::kBadShape, device,
           "channel row has " + std::to_string(row.size()) +
               " entries, instance has " + std::to_string(base_stations_) +
               " base stations");
    }
    for (const double h : row) {
      if (!std::isfinite(h) || h < 0.0) {
        fail(DeltaError::Kind::kBadValue, device,
             "channel efficiency must be finite and >= 0");
      }
    }
  };
  const auto check_workload = [&](std::size_t device, double f, double d) {
    if (!std::isfinite(f) || f <= 0.0 || !std::isfinite(d) || d <= 0.0) {
      fail(DeltaError::Kind::kBadValue, device,
           "task cycles and data bits must be finite and > 0");
    }
  };
  for (const auto& join : delta.joins) {
    check_device(join.device);
    if (present[join.device] != 0) {
      fail(DeltaError::Kind::kDuplicateJoin, join.device,
           "device is already present");
    }
    check_workload(join.device, join.task_cycles, join.data_bits);
    check_row(join.device, join.channel_row);
    present[join.device] = 1;
  }
  for (const std::uint32_t device : delta.leaves) {
    check_device(device);
    if (present[device] == 0) {
      fail(DeltaError::Kind::kUnknownDevice, device,
           "leave of a device that is not present");
    }
    present[device] = 0;
  }
  for (const auto& update : delta.workloads) {
    check_device(update.device);
    if (present[update.device] == 0) {
      fail(DeltaError::Kind::kUnknownDevice, update.device,
           "workload update for a device that is not present");
    }
    check_workload(update.device, update.task_cycles, update.data_bits);
  }
  for (const auto& update : delta.channels) {
    check_device(update.device);
    if (present[update.device] == 0) {
      fail(DeltaError::Kind::kUnknownDevice, update.device,
           "channel update for a device that is not present");
    }
    check_row(update.device, update.row);
  }
  if (delta.has_price &&
      (!std::isfinite(delta.price) || delta.price <= 0.0)) {
    fail(DeltaError::Kind::kBadValue, DeltaError::kNoDevice,
         "price must be finite and > 0");
  }

  // ---- apply pass (cannot fail) ----------------------------------------
  for (const auto& join : delta.joins) {
    state_.task_cycles[join.device] = join.task_cycles;
    state_.data_bits[join.device] = join.data_bits;
    state_.channel[join.device] = join.channel_row;
  }
  for (const std::uint32_t device : delta.leaves) {
    // Keep-alive trickle, mirroring the churn scenario: the device slot
    // stays solver-feasible (f > 0, channel row intact) but sheds its load.
    state_.task_cycles[device] *= away_fraction_;
    state_.data_bits[device] *= away_fraction_;
  }
  for (const auto& update : delta.workloads) {
    state_.task_cycles[update.device] = update.task_cycles;
    state_.data_bits[update.device] = update.data_bits;
  }
  for (const auto& update : delta.channels) {
    state_.channel[update.device] = update.row;
  }
  if (delta.has_price) state_.price_per_mwh = delta.price;
  state_.slot = static_cast<std::size_t>(delta.slot);
  active_ = present;
  ++applied_;
  out = state_;
}

bool DeltaApplier::device_active(std::size_t device) const {
  EOTORA_REQUIRE(device < devices_);
  return active_[device] != 0;
}

std::size_t DeltaApplier::active_devices() const {
  std::size_t count = 0;
  for (const char flag : active_) count += flag != 0 ? 1 : 0;
  return count;
}

void DeltaApplier::reset() {
  state_ = core::SlotState{};
  state_.task_cycles.assign(devices_, 0.0);
  state_.data_bits.assign(devices_, 0.0);
  state_.channel.assign(devices_,
                        std::vector<double>(base_stations_, 0.0));
  active_.assign(devices_, 0);
  applied_ = 0;
}

void DeltaRecorder::diff(const core::SlotState& state, SlotDelta& out) {
  const std::size_t devices = state.task_cycles.size();
  EOTORA_REQUIRE_MSG(state.data_bits.size() == devices &&
                         state.channel.size() == devices,
                     "inconsistent SlotState shape");
  out.slot = state.slot;
  out.joins.clear();
  out.leaves.clear();
  out.workloads.clear();
  out.channels.clear();
  if (!have_previous_) {
    // Full snapshot: every device joins, the price ticks.
    out.has_price = true;
    out.price = state.price_per_mwh;
    out.joins.reserve(devices);
    for (std::size_t i = 0; i < devices; ++i) {
      SlotDelta::Join join;
      join.device = static_cast<std::uint32_t>(i);
      join.task_cycles = state.task_cycles[i];
      join.data_bits = state.data_bits[i];
      join.channel_row = state.channel[i];
      out.joins.push_back(std::move(join));
    }
  } else {
    EOTORA_REQUIRE_MSG(previous_.task_cycles.size() == devices,
                       "device count changed mid-stream: "
                           << previous_.task_cycles.size() << " -> "
                           << devices);
    out.has_price = !bits_equal(previous_.price_per_mwh, state.price_per_mwh);
    out.price = out.has_price ? state.price_per_mwh : 0.0;
    for (std::size_t i = 0; i < devices; ++i) {
      if (!bits_equal(previous_.task_cycles[i], state.task_cycles[i]) ||
          !bits_equal(previous_.data_bits[i], state.data_bits[i])) {
        out.workloads.push_back({static_cast<std::uint32_t>(i),
                                 state.task_cycles[i], state.data_bits[i]});
      }
      EOTORA_REQUIRE_MSG(
          previous_.channel[i].size() == state.channel[i].size(),
          "base-station count changed mid-stream for device " << i);
      if (!rows_equal(previous_.channel[i], state.channel[i])) {
        out.channels.push_back(
            {static_cast<std::uint32_t>(i), state.channel[i]});
      }
    }
  }
  previous_ = state;
  have_previous_ = true;
}

void DeltaRecorder::reset() {
  previous_ = core::SlotState{};
  have_previous_ = false;
}

std::vector<SlotDelta> record_deltas(StateSource& source) {
  std::vector<SlotDelta> deltas;
  DeltaRecorder recorder;
  core::SlotState state;
  SlotDelta delta;
  while (source.next(state)) {
    recorder.diff(state, delta);
    deltas.push_back(delta);
  }
  return deltas;
}

std::vector<SlotDelta> record_deltas(
    const std::vector<core::SlotState>& states) {
  MaterializedSource source(states);
  return record_deltas(source);
}

DeltaSource::DeltaSource(std::vector<SlotDelta> deltas, std::size_t devices,
                         std::size_t base_stations,
                         double away_workload_fraction)
    : deltas_(std::move(deltas)),
      applier_(devices, base_stations, away_workload_fraction) {}

bool DeltaSource::next(core::SlotState& out) {
  if (index_ >= deltas_.size()) return false;
  applier_.apply(deltas_[index_], out);
  ++index_;
  return true;
}

void DeltaSource::reset() {
  applier_.reset();
  index_ = 0;
}

}  // namespace eotora::sim
