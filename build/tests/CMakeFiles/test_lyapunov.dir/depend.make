# Empty dependencies file for test_lyapunov.
# This may be replaced when dependencies are built.
