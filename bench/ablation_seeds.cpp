// Ablation — robustness across seeds: does the Fig. 9 ranking (BDMA-DPP <
// MCBA-DPP < ROPT-DPP in latency) survive topology and trace re-draws, and
// how wide are the confidence intervals?
//
// Runs through sim::run_sweep with seeds > 1: every cell is replicated over
// independent scenario seeds (base seed + r) and reported with a 95% CI.
// The replications execute over the shared thread pool; the results are
// identical for any --threads value.
//
//   --devices=N --seed=S --horizon=T --seeds=R --threads=K --out=path.json
#include <algorithm>
#include <iostream>

#include "eotora/eotora.h"

int main(int argc, char** argv) {
  using namespace eotora;
  try {
    const util::Args args(
        argc, argv, {"devices", "seed", "horizon", "seeds", "threads", "out"});
    sim::SweepSpec spec;
    spec.name = "ablation_seeds";
    spec.base.devices = static_cast<std::size_t>(args.get_int("devices", 80));
    spec.base.budget_per_slot = 1.0;
    spec.base.seed = static_cast<std::uint64_t>(args.get_int("seed", 9000));
    spec.horizon = static_cast<std::size_t>(args.get_int("horizon", 24 * 4));
    spec.window = spec.horizon;  // full-run averages, as the seed version
    spec.seeds = static_cast<std::size_t>(args.get_int("seeds", 5));
    spec.policies = {"dpp-bdma", "dpp-mcba", "dpp-ropt"};
    spec.params.v = 100.0;
    spec.params.initial_queue = 20.0;
    spec.params.bdma_iterations = 3;
    spec.params.mcba_iterations = 2000;

    std::cout << "Ablation: policy ranking across " << spec.seeds
              << " independent scenario seeds (I = " << spec.base.devices
              << ", " << spec.horizon << " slots each)\n\n";
    const auto result =
        sim::run_sweep(spec, static_cast<std::size_t>(args.get_int("threads", 0)));
    result.table().print(std::cout);
    std::cout << "\nreading: the BDMA < MCBA < ROPT latency ranking holds for "
                 "every seed, and the CI separation shows it is not a "
                 "single-draw artifact.\n";
    if (args.has("out")) {
      const std::string path = args.get("out", "");
      result.write_json(path);
      std::cout << "wrote " << path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
