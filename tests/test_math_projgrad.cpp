#include "math/projgrad.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace eotora::math {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(SimplexProjection, PointAlreadyInSimplex) {
  const auto p = project_to_simplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(SimplexProjection, ProjectionSumsToRadius) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(5);
    for (double& x : v) x = rng.uniform(-2.0, 2.0);
    const auto p = project_to_simplex(v, 1.0);
    EXPECT_NEAR(sum(p), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(SimplexProjection, CustomRadius) {
  const auto p = project_to_simplex({10.0, 0.0}, 2.0);
  EXPECT_NEAR(sum(p), 2.0, 1e-9);
  EXPECT_NEAR(p[0], 2.0, 1e-9);
}

TEST(SimplexProjection, IsIdempotent) {
  const auto p = project_to_simplex({0.9, -0.4, 0.8});
  const auto q = project_to_simplex(p);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(p[i], q[i], 1e-9);
}

TEST(SimplexProjection, RejectsBadArgs) {
  EXPECT_THROW((void)project_to_simplex({}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)project_to_simplex({1.0}, 0.0), std::invalid_argument);
}

// The closed-form optimum of min Σ c_i/x_i over the simplex is
// x_i = sqrt(c_i) / Σ sqrt(c_j) — exactly Lemma 1's shape. The projected
// gradient solver must land on it.
TEST(InverseOverSimplex, MatchesClosedForm) {
  const std::vector<double> costs = {1.0, 4.0, 9.0};
  const auto r = minimize_inverse_over_simplex(costs);
  const double denom = 1.0 + 2.0 + 3.0;
  EXPECT_NEAR(r.x[0], 1.0 / denom, 1e-3);
  EXPECT_NEAR(r.x[1], 2.0 / denom, 1e-3);
  EXPECT_NEAR(r.x[2], 3.0 / denom, 1e-3);
  // Objective within a hair of the closed-form optimum (Σ sqrt(c))².
  EXPECT_NEAR(r.value, denom * denom, denom * denom * 1e-4);
}

TEST(InverseOverSimplex, SingleVariableGetsEverything) {
  const auto r = minimize_inverse_over_simplex({7.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.value, 7.0, 1e-6);
}

TEST(InverseOverSimplex, RandomInstancesBeatUniform) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(6);
    std::vector<double> costs(n);
    for (double& c : costs) c = rng.uniform(0.1, 10.0);
    const auto r = minimize_inverse_over_simplex(costs);
    double uniform_value = 0.0;
    for (double c : costs) uniform_value += c * static_cast<double>(n);
    EXPECT_LE(r.value, uniform_value + 1e-9);
    // Closed-form optimum as the floor.
    double sqrt_sum = 0.0;
    for (double c : costs) sqrt_sum += std::sqrt(c);
    EXPECT_GE(r.value, sqrt_sum * sqrt_sum - 1e-9);
    EXPECT_NEAR(r.value, sqrt_sum * sqrt_sum, sqrt_sum * sqrt_sum * 1e-3);
  }
}

TEST(InverseOverSimplex, RejectsNonPositiveCosts) {
  EXPECT_THROW((void)minimize_inverse_over_simplex({1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)minimize_inverse_over_simplex({}),
               std::invalid_argument);
}

}  // namespace
}  // namespace eotora::math
