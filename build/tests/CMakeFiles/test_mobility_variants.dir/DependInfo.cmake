
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mobility_variants.cpp" "tests/CMakeFiles/test_mobility_variants.dir/test_mobility_variants.cpp.o" "gcc" "tests/CMakeFiles/test_mobility_variants.dir/test_mobility_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/eotora_des.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eotora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eotora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eotora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/eotora_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eotora_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/eotora_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eotora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
