file(REMOVE_RECURSE
  "CMakeFiles/eotora_sim.dir/decision_log.cpp.o"
  "CMakeFiles/eotora_sim.dir/decision_log.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/experiment.cpp.o"
  "CMakeFiles/eotora_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/mpc_policy.cpp.o"
  "CMakeFiles/eotora_sim.dir/mpc_policy.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/policy.cpp.o"
  "CMakeFiles/eotora_sim.dir/policy.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/replay.cpp.o"
  "CMakeFiles/eotora_sim.dir/replay.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/report.cpp.o"
  "CMakeFiles/eotora_sim.dir/report.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/scenario.cpp.o"
  "CMakeFiles/eotora_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/eotora_sim.dir/simulator.cpp.o"
  "CMakeFiles/eotora_sim.dir/simulator.cpp.o.d"
  "libeotora_sim.a"
  "libeotora_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eotora_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
