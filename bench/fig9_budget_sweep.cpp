// Figure 9 — time-average latency and energy cost versus the energy-cost
// budget C̄, comparing BDMA-based DPP against ROPT-based DPP and MCBA-based
// DPP (each latency averaged over the last 48 slots, as in the paper).
//
// Paper's reported shape: BDMA-based DPP achieves the lowest latency at
// every budget; all DPP variants keep the average energy cost below the
// budget line; latency falls as the budget loosens.
#include <iostream>

#include "eotora/eotora.h"

int main() {
  using namespace eotora;
  const std::size_t horizon = 24 * 12;  // 12 days; report the last 48 slots
  const std::size_t window = 48;

  std::cout << "Fig. 9 reproduction: latency & energy cost vs budget "
               "(I = 100, V = 100, z = 5, 48-slot averages)\n\n";

  util::Table table({"budget $/slot", "policy", "avg latency (s)",
                     "avg cost ($/slot)", "within budget"});
  for (double budget : {0.85, 0.95, 1.05, 1.15, 1.25, 1.35}) {
    sim::ScenarioConfig config;
    config.devices = 100;
    config.budget_per_slot = budget;
    config.seed = 2023;  // same seed: identical topology + state draws
    sim::Scenario scenario(config);
    const auto states = scenario.generate_states(horizon);

    for (core::P2aSolverKind kind :
         {core::P2aSolverKind::kCgba, core::P2aSolverKind::kMcba,
          core::P2aSolverKind::kRopt}) {
      core::DppConfig dpp;
      dpp.v = 100.0;
      // Warm-start the virtual queue near its converged level (see Fig. 7)
      // so the 48-slot reporting window reflects steady-state behaviour
      // instead of the initial transient.
      dpp.initial_queue = 30.0;
      dpp.bdma.iterations = 5;
      dpp.bdma.solver = kind;
      dpp.bdma.mcba.iterations = 3000;
      sim::DppPolicy policy(scenario.instance(), dpp);
      const auto result = sim::run_policy(policy, states);
      const auto tail = sim::tail_averages(result, window);
      table.add_row({util::format_double(budget, 2), result.policy_name,
                     util::format_double(tail.latency, 3),
                     util::format_double(tail.energy_cost, 3),
                     tail.energy_cost <= budget * 1.02 ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: BDMA-based DPP has the lowest latency at "
               "every budget; tail energy cost tracks at or below the "
               "budget; latency falls as the budget loosens.\n";
  return 0;
}
