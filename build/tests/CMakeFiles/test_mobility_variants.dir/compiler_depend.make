# Empty compiler generated dependencies file for test_mobility_variants.
# This may be replaced when dependencies are built.
