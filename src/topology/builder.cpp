#include "topology/builder.h"

#include "util/check.h"

namespace eotora::topology {

TopologyBuilder& TopologyBuilder::set_region(Region region) {
  region_ = region;
  return *this;
}

ClusterId TopologyBuilder::add_cluster(std::string name, Point position) {
  const ClusterId id{clusters_.size()};
  clusters_.push_back(Cluster{id, std::move(name), position, {}});
  return id;
}

ServerId TopologyBuilder::add_server(
    std::string name, ClusterId cluster, int cores, double freq_min_ghz,
    double freq_max_ghz,
    std::shared_ptr<const energy::EnergyModel> energy_model) {
  EOTORA_REQUIRE_MSG(cluster.value < clusters_.size(),
                     "unknown cluster " << cluster.value);
  const ServerId id{servers_.size()};
  servers_.push_back(Server{id, std::move(name), cluster, cores, freq_min_ghz,
                            freq_max_ghz, std::move(energy_model)});
  clusters_[cluster.value].servers.push_back(id);
  return id;
}

BaseStationId TopologyBuilder::add_base_station(
    std::string name, Point position, Band band, double coverage_radius_m,
    double access_bandwidth_hz, double fronthaul_bandwidth_hz,
    double fronthaul_spectral_efficiency, std::vector<ClusterId> clusters) {
  const BaseStationId id{base_stations_.size()};
  base_stations_.push_back(BaseStation{
      id, std::move(name), position, band, coverage_radius_m,
      access_bandwidth_hz, fronthaul_bandwidth_hz,
      fronthaul_spectral_efficiency, std::move(clusters)});
  return id;
}

DeviceId TopologyBuilder::add_device(std::string name, Point position,
                                     double speed_mps) {
  const DeviceId id{devices_.size()};
  devices_.push_back(MobileDevice{id, std::move(name), position, speed_mps});
  return id;
}

Topology TopologyBuilder::build() const {
  return Topology(base_stations_, clusters_, servers_, devices_, region_);
}

}  // namespace eotora::topology
