#include "core/alloc_rules.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/latency.h"
#include "core/lemma1.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/stats.h"

namespace eotora::core {
namespace {

Assignment shared_assignment(std::size_t devices) {
  Assignment a;
  a.bs_of.assign(devices, 0);
  a.server_of.assign(devices, 0);
  return a;
}

TEST(EqualShare, SplitsEvenly) {
  const Instance instance = test::tiny_instance(4);
  const SlotState state = test::uniform_state(4, 2);
  const auto alloc =
      equal_share_allocation(instance, state, shared_assignment(4));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(alloc.phi[i], 0.25);
    EXPECT_DOUBLE_EQ(alloc.psi_access[i], 0.25);
    EXPECT_DOUBLE_EQ(alloc.psi_fronthaul[i], 0.25);
  }
  EXPECT_TRUE(allocation_feasible(instance, shared_assignment(4), alloc));
}

TEST(DemandProportional, WeightsFollowDemand) {
  const Instance instance = test::tiny_instance(2);
  SlotState state = test::uniform_state(2, 2);
  state.task_cycles = {1e8, 3e8};  // 1:3 demand
  const auto alloc = demand_proportional_allocation(instance, state,
                                                    shared_assignment(2));
  EXPECT_NEAR(alloc.phi[0], 0.25, 1e-12);
  EXPECT_NEAR(alloc.phi[1], 0.75, 1e-12);
}

TEST(AllocRules, AllRulesFeasibleOnRandomInstances) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t devices = 3 + rng.index(4);
    const Instance instance = test::tiny_instance(devices);
    const SlotState state = test::random_state(devices, 2, rng);
    Assignment assignment;
    for (std::size_t i = 0; i < devices; ++i) {
      assignment.bs_of.push_back(0);
      assignment.server_of.push_back(rng.index(3));
    }
    for (const auto& alloc :
         {equal_share_allocation(instance, state, assignment),
          demand_proportional_allocation(instance, state, assignment),
          optimal_allocation(instance, state, assignment)}) {
      EXPECT_TRUE(allocation_feasible(instance, assignment, alloc));
    }
  }
}

// The ablation claim behind Lemma 1: the closed form dominates both straw-man
// rules on every instance.
class Lemma1Dominance : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Dominance, OptimalBeatsEqualAndProportional) {
  util::Rng rng(4000 + GetParam());
  const std::size_t devices = 3 + rng.index(4);
  const Instance instance = test::tiny_instance(devices);
  const SlotState state = test::random_state(devices, 2, rng);
  Assignment assignment;
  for (std::size_t i = 0; i < devices; ++i) {
    assignment.bs_of.push_back(0);
    assignment.server_of.push_back(rng.index(3));
  }
  const Frequencies freq = instance.max_frequencies();
  const double optimal = latency_under_allocation(
      instance, state, assignment, freq,
      optimal_allocation(instance, state, assignment));
  const double equal = latency_under_allocation(
      instance, state, assignment, freq,
      equal_share_allocation(instance, state, assignment));
  const double proportional = latency_under_allocation(
      instance, state, assignment, freq,
      demand_proportional_allocation(instance, state, assignment));
  EXPECT_LE(optimal, equal * (1.0 + 1e-9));
  EXPECT_LE(optimal, proportional * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Dominance, ::testing::Range(0, 10));

TEST(ReducedDeviceLatencies, SumToReducedTotal) {
  util::Rng rng(5);
  const std::size_t devices = 5;
  const Instance instance = test::tiny_instance(devices);
  const SlotState state = test::random_state(devices, 2, rng);
  Assignment assignment;
  for (std::size_t i = 0; i < devices; ++i) {
    assignment.bs_of.push_back(0);
    assignment.server_of.push_back(i % 3);
  }
  const Frequencies freq = instance.max_frequencies();
  const auto per_device =
      reduced_device_latencies(instance, state, assignment, freq);
  ASSERT_EQ(per_device.size(), devices);
  const double sum =
      std::accumulate(per_device.begin(), per_device.end(), 0.0);
  EXPECT_NEAR(sum, reduced_latency(instance, state, assignment, freq),
              1e-9 * sum);
  for (double latency : per_device) EXPECT_GT(latency, 0.0);
}

// The total-latency identity documented in alloc_rules.h: proportional and
// equal shares give EXACTLY the same total (n * sum(c) per resource), and
// proportional equalizes per-device latency within a shared resource.
TEST(AllocRules, ProportionalEqualsEqualShareInTotal) {
  util::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t devices = 3 + rng.index(4);
    const Instance instance = test::tiny_instance(devices);
    const SlotState state = test::random_state(devices, 2, rng);
    Assignment assignment;
    for (std::size_t i = 0; i < devices; ++i) {
      assignment.bs_of.push_back(0);
      assignment.server_of.push_back(rng.index(3));
    }
    const Frequencies freq = instance.max_frequencies();
    const double equal = latency_under_allocation(
        instance, state, assignment, freq,
        equal_share_allocation(instance, state, assignment));
    const double proportional = latency_under_allocation(
        instance, state, assignment, freq,
        demand_proportional_allocation(instance, state, assignment));
    EXPECT_NEAR(equal, proportional, 1e-9 * equal);
  }
}

TEST(AllocRules, ProportionalEqualizesPerDeviceLatencyOnSharedResource) {
  const Instance instance = test::tiny_instance(3);
  SlotState state = test::uniform_state(3, 2);
  state.task_cycles = {5e7, 1e8, 2e8};
  state.data_bits = {3e6, 6e6, 9e6};
  Assignment assignment = [&] {
    Assignment a;
    a.bs_of.assign(3, 0);
    a.server_of.assign(3, 0);
    return a;
  }();
  const Frequencies freq = instance.max_frequencies();
  const auto alloc =
      demand_proportional_allocation(instance, state, assignment);
  // All three devices share every resource, so each one's latency is the
  // same under proportional sharing.
  const auto l0 = device_latency_under_allocation(instance, state, assignment,
                                                  freq, alloc, 0);
  const auto l1 = device_latency_under_allocation(instance, state, assignment,
                                                  freq, alloc, 1);
  const auto l2 = device_latency_under_allocation(instance, state, assignment,
                                                  freq, alloc, 2);
  EXPECT_NEAR(l0.total(), l1.total(), 1e-9 * l0.total());
  EXPECT_NEAR(l1.total(), l2.total(), 1e-9 * l1.total());
}

TEST(AllocRules, RejectUnusableChannel) {
  const Instance instance = test::tiny_instance(1);
  SlotState state = test::uniform_state(1, 2);
  state.channel[0][0] = 0.0;
  Assignment assignment = shared_assignment(1);
  EXPECT_THROW(
      (void)equal_share_allocation(instance, state, assignment),
      std::invalid_argument);
  EXPECT_THROW(
      (void)demand_proportional_allocation(instance, state, assignment),
      std::invalid_argument);
}

}  // namespace
}  // namespace eotora::core
