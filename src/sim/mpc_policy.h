// Certainty-equivalence receding-horizon control (MPC) — the classic
// alternative to the paper's Lyapunov approach.
//
// Where DPP needs no model of the future (the virtual queue reacts), MPC
// exploits the known structure: prices and workloads are periodic trends
// plus noise. Each slot it
//   1. updates online trend estimates (trace::OnlineTrendEstimator) of the
//      price and of the mean task size from the observed stream;
//   2. forecasts the next `window` slots by certainty equivalence
//      (noise replaced by zero);
//   3. picks ONE Lagrange multiplier λ for the whole window by bisection so
//      the forecast energy spend over the window equals window·C̄ — i.e. it
//      plans to spend cheap forecast hours harder than expensive ones;
//   4. executes only the current slot: CGBA assignment, frequencies from
//      the per-server convex problem at (V = 1, Q = λ).
// Until every phase of the period has been observed, it falls back to the
// greedy per-slot-budget rule (no trend to exploit yet).
//
// The comparison against DPP (bench/ablation_mpc) shows the trade: MPC
// matches DPP when its forecasts are good and degrades as the noise share
// grows; DPP needs no forecasts at all — which is the paper's argument.
#pragma once

#include <vector>

#include "sim/policy.h"
#include "trace/online_trend.h"

namespace eotora::sim {

struct MpcConfig {
  std::size_t window = 24;   // look-ahead horizon (one period by default)
  std::size_t period = 24;   // D: slots per day
  double trend_alpha = 0.15; // EMA weight for the online trend estimators
  double max_multiplier = 1e6;
  int bisection_iterations = 40;
  core::CgbaConfig cgba;
};

// The inputs one MPC plan is solved against: per-slot price and load-scale
// forecasts over the look-ahead window (slot 0 is the observed slot) and
// the budget the forecast spend must fit. Before the trend estimators have
// seen every phase this degrades to a window of one at the observed price
// (the greedy per-slot-budget bootstrap).
struct MpcPlanInputs {
  std::vector<double> prices;
  std::vector<double> load_scale;
  double budget = 0.0;
};

// The MPC math, exposed as free functions so the monolithic MpcPolicy and
// the sim::pipeline MPC stages drive the exact same code (bit-identical
// plans by construction).

// Per-server load sums A_n = Σ_i sqrt(F_i / e_{i,n}) under `assignment`.
[[nodiscard]] std::vector<double> mpc_compute_load(
    const core::Instance& instance, const core::SlotState& state,
    const core::Assignment& assignment);

// Frequencies minimizing  A_n/capacity(ω) + λ·price·cost(ω)  per server.
[[nodiscard]] core::Frequencies mpc_frequencies_for(
    const core::Instance& instance, const std::vector<double>& compute_load,
    double lambda, double price);

// Total energy cost of the forecast window at multiplier λ.
[[nodiscard]] double mpc_window_cost(const core::Instance& instance,
                                     const std::vector<double>& compute_load,
                                     double lambda,
                                     const std::vector<double>& prices,
                                     const std::vector<double>& load_scale);

// Certainty-equivalence forecast of the window from the online trends, or
// the bootstrap window-of-one when either estimator is not ready yet.
[[nodiscard]] MpcPlanInputs mpc_plan_inputs(
    const MpcConfig& config, const core::Instance& instance,
    const core::SlotState& state,
    const trace::OnlineTrendEstimator& price_trend,
    const trace::OnlineTrendEstimator& demand_trend);

// One multiplier λ for the whole window, bisected so the forecast spend
// fits inputs.budget (0 when the unconstrained plan already fits).
[[nodiscard]] double mpc_plan_multiplier(
    const MpcConfig& config, const core::Instance& instance,
    const std::vector<double>& compute_load, const MpcPlanInputs& inputs);

class MpcPolicy final : public Policy {
 public:
  MpcPolicy(const core::Instance& instance, MpcConfig config);

  core::DppSlotResult step(const core::SlotState& state,
                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override {
    return "Receding-horizon MPC";
  }
  void reset() override;

  // The multiplier chosen at the last slot (0 until the first planned slot).
  [[nodiscard]] double last_multiplier() const { return last_multiplier_; }
  [[nodiscard]] bool forecasting() const;

 private:
  const core::Instance* instance_;
  MpcConfig config_;
  trace::OnlineTrendEstimator price_trend_;
  trace::OnlineTrendEstimator demand_trend_;
  double last_multiplier_ = 0.0;
  core::WcgProblem problem_;  // rebuilt in place every step
};

}  // namespace eotora::sim
