#include "util/build_info.h"

#ifndef EOTORA_GIT_DESCRIBE
#define EOTORA_GIT_DESCRIBE "unknown"
#endif
#ifndef EOTORA_BUILD_TYPE
#define EOTORA_BUILD_TYPE "unknown"
#endif

namespace eotora::util {

const BuildInfo& build_info() {
  static const BuildInfo info{EOTORA_GIT_DESCRIBE, EOTORA_BUILD_TYPE};
  return info;
}

}  // namespace eotora::util
