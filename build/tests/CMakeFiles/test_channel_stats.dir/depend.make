# Empty dependencies file for test_channel_stats.
# This may be replaced when dependencies are built.
