#include "util/check.h"

namespace eotora::util {

std::string check_message(const char* kind, const char* expr, const char* file,
                          int line, const std::string& detail) {
  std::ostringstream oss;
  oss << file << ':' << line << ": " << kind << " failed: " << expr;
  if (!detail.empty()) {
    oss << " (" << detail << ')';
  }
  return oss.str();
}

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& detail) {
  throw std::invalid_argument(
      check_message("precondition", expr, file, line, detail));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& detail) {
  throw std::logic_error(
      check_message("invariant", expr, file, line, detail));
}

}  // namespace eotora::util
