#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace eotora::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng;
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.index(5)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng;
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsRejectsNegativeStddev) {
  Rng rng;
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbabilityRoughlyCorrect) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng;
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
  }
  // The fork differs from the parent stream.
  Rng c(99);
  Rng fc = c.fork();
  bool different = false;
  for (int i = 0; i < 20; ++i) {
    if (fc.uniform(0.0, 1.0) != c.uniform(0.0, 1.0)) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(Rng, PickReturnsElementFromVector) {
  Rng rng(1);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(items);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(2);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace eotora::util
