// Command-line experiment driver: run any policy on the paper scenario with
// parameters from flags, optionally recording the state trace or replaying a
// previous one.
//
//   $ ./examples/eotora_cli --help
//   $ ./examples/eotora_cli --policy=bdma --v=200 --days=7 --budget=1.1
//   $ ./examples/eotora_cli --policy=greedy --devices=60 --record=run.csv
//   $ ./examples/eotora_cli --policy=mcba --replay=run.csv
#include <iostream>
#include <memory>

#include "eotora/eotora.h"
#include "util/args.h"

namespace {

void print_usage() {
  std::cout <<
      R"(eotora_cli - run an EOTORA policy on the paper scenario

options (all --key=value):
  --policy   any sim/registry name (dpp-bdma | dpp-mcba | dpp-ropt |
             greedy-budget | fixed-frequency | fixed-max | fixed-min |
             mpc), or the short aliases bdma | mcba | ropt | greedy  [bdma]
  --devices  number of mobile devices                             [100]
  --days     horizon in days (24 slots each)                      [7]
  --budget   energy budget in $ per slot                          [1.0]
  --v        DPP penalty weight V                                 [100]
  --q0       initial queue backlog Q(1)                           [0]
  --z        BDMA iterations                                      [5]
  --seed     scenario seed                                        [42]
  --record   write the generated state trace to this CSV path
  --replay   read states from this CSV instead of generating
  --log      write a per-slot decision log (CSV) to this path
  --audit    re-validate every slot against the P1 constraint set
             (sim/audit.h): "every" (default when the flag is bare),
             "sample" (every 16th slot), or "off"; exits 3 on violations
  --help     this text
)";
}

// Parses the --audit flag value into a config, with check_queue narrowed
// to policies that actually maintain the virtual queue.
eotora::sim::AuditConfig parse_audit_config(const std::string& value,
                                            const std::string& policy_name) {
  eotora::sim::AuditConfig config;
  if (value.empty() || value == "every" || value == "every-slot") {
    config.mode = eotora::sim::AuditMode::kEverySlot;
  } else if (value == "sample" || value == "sampled") {
    config.mode = eotora::sim::AuditMode::kSampled;
  } else if (value == "off") {
    config.mode = eotora::sim::AuditMode::kOff;
  } else {
    throw std::invalid_argument("--audit must be every | sample | off, got '" +
                                value + "'");
  }
  config.check_queue = eotora::sim::policy_tracks_queue(policy_name);
  return config;
}

// Prints the audit digest and the first few violations; returns the
// process exit code (0 clean, 3 violations).
int report_audit(const eotora::sim::AuditReport& report) {
  std::cout << "audit: " << report.summary() << "\n";
  constexpr std::size_t kMaxShown = 5;
  for (std::size_t i = 0; i < report.violations.size() && i < kMaxShown; ++i) {
    std::cout << "  " << report.violations[i].describe() << "\n";
  }
  if (report.violations.size() > kMaxShown) {
    std::cout << "  ... " << (report.total_violations() - kMaxShown)
              << " more\n";
  }
  return report.clean() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eotora;
  try {
    const util::Args args(argc, argv,
                          {"policy", "devices", "days", "budget", "v", "q0",
                           "z", "seed", "record", "replay", "log", "audit",
                           "help"});
    if (args.has("help")) {
      print_usage();
      return 0;
    }

    sim::ScenarioConfig config;
    config.devices = static_cast<std::size_t>(args.get_int("devices", 100));
    config.budget_per_slot = args.get_double("budget", 1.0);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    sim::Scenario scenario(config);
    sim::print_scenario(std::cout, scenario);

    std::vector<core::SlotState> states;
    if (args.has("replay")) {
      states = sim::load_states(args.get("replay", ""));
      std::cout << "replaying " << states.size() << " slots from "
                << args.get("replay", "") << "\n";
    } else {
      const auto days = static_cast<std::size_t>(args.get_int("days", 7));
      states = scenario.generate_states(24 * days);
    }
    if (args.has("record")) {
      sim::save_states(args.get("record", ""), states);
      std::cout << "recorded " << states.size() << " slots to "
                << args.get("record", "") << "\n";
    }

    // Policies come from the registry; the historical short names stay as
    // aliases.
    std::string policy_name = args.get("policy", "bdma");
    if (policy_name == "bdma") policy_name = "dpp-bdma";
    else if (policy_name == "mcba") policy_name = "dpp-mcba";
    else if (policy_name == "ropt") policy_name = "dpp-ropt";
    else if (policy_name == "greedy") policy_name = "greedy-budget";
    sim::PolicyParams params;
    params.v = args.get_double("v", 100.0);
    params.initial_queue = args.get_double("q0", 0.0);
    params.bdma_iterations = static_cast<std::size_t>(args.get_int("z", 5));
    std::unique_ptr<sim::Policy> policy;
    try {
      policy = sim::make_policy(policy_name, scenario.instance(), params);
    } catch (const std::invalid_argument& error) {
      std::cerr << error.what() << "\n";
      print_usage();
      return 2;
    }

    sim::AuditConfig audit;
    audit.mode = sim::AuditMode::kOff;
    if (args.has("audit")) {
      audit = parse_audit_config(args.get("audit", ""), policy_name);
    }
    const bool auditing = audit.mode != sim::AuditMode::kOff;

    sim::SimulationResult result;
    if (args.has("log")) {
      // Manual loop so each slot can be logged (and audited in-line).
      policy->reset();
      util::Rng rng(1);
      result.policy_name = policy->name();
      sim::DecisionLog log;
      sim::SlotAuditor auditor(scenario.instance(), audit);
      util::Timer timer;
      for (const auto& state : states) {
        const auto slot = policy->step(state, rng);
        result.metrics.record(slot);
        log.record(state, slot);
        if (auditing) auditor.observe(state, slot);
      }
      result.wall_seconds = timer.elapsed_seconds();
      result.audit = auditor.report();
      log.save(args.get("log", ""));
      std::cout << "wrote per-slot log to " << args.get("log", "") << "\n";
    } else if (auditing) {
      result = sim::run_policy(*policy, scenario.instance(), states, audit);
    } else {
      result = sim::run_policy(*policy, states);
    }
    std::cout << "\n";
    sim::print_comparison(std::cout, {result}, config.budget_per_slot);
    if (auditing) {
      return report_audit(result.audit);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
