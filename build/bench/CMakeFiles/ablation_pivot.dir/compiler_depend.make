# Empty compiler generated dependencies file for ablation_pivot.
# This may be replaced when dependencies are built.
