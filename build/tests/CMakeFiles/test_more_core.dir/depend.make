# Empty dependencies file for test_more_core.
# This may be replaced when dependencies are built.
