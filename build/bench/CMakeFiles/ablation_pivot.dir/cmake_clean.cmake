file(REMOVE_RECURSE
  "CMakeFiles/ablation_pivot.dir/ablation_pivot.cpp.o"
  "CMakeFiles/ablation_pivot.dir/ablation_pivot.cpp.o.d"
  "ablation_pivot"
  "ablation_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
