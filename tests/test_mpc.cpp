#include "sim/mpc_policy.h"

#include <gtest/gtest.h>

#include "core/latency.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace eotora::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.devices = 12;
  config.mid_band_stations = 2;
  config.low_band_stations = 2;
  config.clusters = 2;
  config.servers_per_cluster = 3;
  config.seed = 17;
  config.budget_per_slot = 1.2;
  return config;
}

TEST(Mpc, ProducesFeasibleDecisionsFromSlotOne) {
  Scenario scenario(small_config());
  MpcPolicy policy(scenario.instance(), MpcConfig{});
  util::Rng rng(1);
  for (int t = 0; t < 30; ++t) {
    const auto state = scenario.next_state();
    const auto slot = policy.step(state, rng);
    EXPECT_TRUE(
        scenario.instance().frequencies_feasible(slot.decision.frequencies));
    EXPECT_TRUE(core::allocation_feasible(scenario.instance(),
                                          slot.decision.assignment,
                                          slot.decision.allocation));
    EXPECT_GT(slot.latency, 0.0);
  }
}

TEST(Mpc, StartsForecastingAfterOnePeriod) {
  Scenario scenario(small_config());
  MpcPolicy policy(scenario.instance(), MpcConfig{});
  util::Rng rng(2);
  for (int t = 0; t < 24; ++t) {
    EXPECT_FALSE(policy.forecasting()) << "slot " << t;
    (void)policy.step(scenario.next_state(), rng);
  }
  EXPECT_TRUE(policy.forecasting());
}

TEST(Mpc, ResetForgetsTrends) {
  Scenario scenario(small_config());
  MpcPolicy policy(scenario.instance(), MpcConfig{});
  util::Rng rng(3);
  for (int t = 0; t < 30; ++t) (void)policy.step(scenario.next_state(), rng);
  EXPECT_TRUE(policy.forecasting());
  policy.reset();
  EXPECT_FALSE(policy.forecasting());
}

TEST(Mpc, WindowBudgetRoughlyRespectedOnceForecasting) {
  ScenarioConfig config = small_config();
  Scenario scenario(config);
  MpcPolicy policy(scenario.instance(), MpcConfig{});
  const auto states = scenario.generate_states(24 * 8);
  util::Rng rng(4);
  policy.reset();
  double tail_cost = 0.0;
  int tail_slots = 0;
  for (const auto& state : states) {
    const auto slot = policy.step(state, rng);
    if (state.slot >= 24 * 4) {  // trends converged
      tail_cost += slot.energy_cost;
      ++tail_slots;
    }
  }
  ASSERT_GT(tail_slots, 0);
  // Certainty-equivalence planning keeps the realized average near the
  // budget (forecast errors allow a modest band).
  EXPECT_LT(tail_cost / tail_slots, config.budget_per_slot * 1.15);
  EXPECT_GT(tail_cost / tail_slots, config.budget_per_slot * 0.5);
}

TEST(Mpc, SpendsMoreInCheapForecastHours) {
  // With a clean price cycle, the planned multiplier is shared across the
  // window, so realized frequencies must anti-correlate with price.
  ScenarioConfig config = small_config();
  config.price.noise_stddev = 1.0;
  config.price.spike_probability = 0.0;
  // A budget strictly between the floor and ceiling cost, so the planned
  // multiplier is positive and the clock actually moves with the price.
  config.budget_per_slot = 0.5;
  Scenario scenario(config);
  MpcPolicy policy(scenario.instance(), MpcConfig{});
  const auto states = scenario.generate_states(24 * 8);
  util::Rng rng(5);
  policy.reset();
  std::vector<double> prices;
  std::vector<double> clocks;
  for (const auto& state : states) {
    const auto slot = policy.step(state, rng);
    if (state.slot >= 24 * 4) {
      prices.push_back(state.price_per_mwh);
      double mean = 0.0;
      for (double w : slot.decision.frequencies) mean += w;
      clocks.push_back(mean / slot.decision.frequencies.size());
    }
  }
  EXPECT_LT(util::correlation(prices, clocks), -0.1);
}

TEST(Mpc, RejectsBadConfig) {
  Scenario scenario(small_config());
  MpcConfig config;
  config.window = 0;
  EXPECT_THROW(MpcPolicy(scenario.instance(), config),
               std::invalid_argument);
  config = {};
  config.bisection_iterations = 0;
  EXPECT_THROW(MpcPolicy(scenario.instance(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace eotora::sim
