// Ablation — non-iid vs iid system states.
//
// The paper's distinguishing assumption is that states are periodic trend +
// iid noise rather than iid (Theorem 4's bound carries a B*D/V term through
// the period D). This ablation varies how much of the workload range is
// trend-driven (trend_weight 0 = the pure-iid draw of §VI-A, 1 = fully
// deterministic diurnal) and reports how DPP behaves: the latency/cost
// outcome and how strongly the clock tracks the price cycle.
#include <iostream>

#include "eotora/eotora.h"

int main() {
  using namespace eotora;
  const std::size_t horizon = 24 * 10;

  std::cout << "Ablation: DPP under iid vs non-iid workloads "
               "(I = 100, V = 100, budget $1/slot)\n\n";

  util::Table table({"trend weight", "avg latency (s)", "avg cost ($/slot)",
                     "tail backlog", "corr(price, mean clock)"});
  for (double weight : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::ScenarioConfig config;
    config.devices = 100;
    config.budget_per_slot = 1.0;
    config.seed = 2024;
    config.workload_trend_weight = weight;
    sim::Scenario scenario(config);
    const auto states = scenario.generate_states(horizon);

    core::DppConfig dpp;
    dpp.v = 100.0;
    dpp.initial_queue = 30.0;
    dpp.bdma.iterations = 5;
    sim::DppPolicy policy(scenario.instance(), dpp);

    // Drive manually to also collect the mean clock per slot.
    policy.reset();
    util::Rng rng(1);
    core::MetricsCollector metrics;
    std::vector<double> prices;
    std::vector<double> clocks;
    for (const auto& state : states) {
      const auto slot = policy.step(state, rng);
      metrics.record(slot);
      prices.push_back(state.price_per_mwh);
      double mean_clock = 0.0;
      for (double w : slot.decision.frequencies) mean_clock += w;
      clocks.push_back(mean_clock / slot.decision.frequencies.size());
    }
    double tail_queue = 0.0;
    const auto& queue = metrics.queue_series();
    for (std::size_t t = horizon - 72; t < horizon; ++t) {
      tail_queue += queue[t];
    }
    table.add_numeric_row({weight, metrics.average_latency(),
                           metrics.average_energy_cost(), tail_queue / 72.0,
                           util::correlation(prices, clocks)},
                          3);
  }
  table.print(std::cout);
  std::cout << "\nreading: at every trend weight the controller slows the "
               "clocks when prices are high (negative correlation) and holds "
               "the budget — the DPP queue needs no iid assumption, which is "
               "the paper's point versus [15]-[17].\n";
  return 0;
}
