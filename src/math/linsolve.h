// Dense linear-system solving (Gaussian elimination with partial pivoting).
//
// Small systems only (polynomial fitting normal equations are 3x3 here), so a
// simple O(n^3) dense solver is the right tool.
#pragma once

#include <vector>

namespace eotora::math {

// Row-major dense matrix with minimal functionality.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// Solves A x = b. Requires A square with A.rows() == b.size(). Throws
// std::invalid_argument on dimension mismatch and std::runtime_error when the
// matrix is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear(Matrix a,
                                               std::vector<double> b);

}  // namespace eotora::math
