file(REMOVE_RECURSE
  "libeotora_util.a"
)
