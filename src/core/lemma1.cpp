#include "core/lemma1.h"

#include <algorithm>
#include <cmath>

#include "core/counters.h"
#include "util/check.h"

namespace eotora::core {

ResourceAllocation optimal_allocation(const Instance& instance,
                                      const SlotState& state,
                                      const Assignment& assignment) {
  const auto& topo = instance.topology();
  const std::size_t devices = topo.num_devices();
  EOTORA_REQUIRE(assignment.bs_of.size() == devices);
  EOTORA_REQUIRE(assignment.server_of.size() == devices);
  EOTORA_REQUIRE(state.task_cycles.size() == devices);
  EOTORA_REQUIRE(state.data_bits.size() == devices);
  ++counters::active().lemma1_evaluations;

  // Per-resource denominators: Σ_j sqrt(c_j) over the devices sharing it.
  std::vector<double> server_denominator(topo.num_servers(), 0.0);
  std::vector<double> access_denominator(topo.num_base_stations(), 0.0);
  std::vector<double> fronthaul_denominator(topo.num_base_stations(), 0.0);

  std::vector<double> sqrt_compute(devices, 0.0);
  std::vector<double> sqrt_access(devices, 0.0);
  std::vector<double> sqrt_fronthaul(devices, 0.0);

  for (std::size_t i = 0; i < devices; ++i) {
    const std::size_t k = assignment.bs_of[i];
    const std::size_t n = assignment.server_of[i];
    EOTORA_REQUIRE_MSG(k < topo.num_base_stations(),
                       "device " << i << " bs=" << k);
    EOTORA_REQUIRE_MSG(n < topo.num_servers(), "device " << i << " server="
                                                         << n);
    const double h = state.channel[i][k];
    EOTORA_REQUIRE_MSG(h > 0.0, "device " << i << " selected base station "
                                          << k << " with unusable channel");
    const auto& reachable =
        topo.reachable_servers(topology::BaseStationId{k});
    EOTORA_REQUIRE_MSG(
        std::binary_search(reachable.begin(), reachable.end(),
                           topology::ServerId{n}),
        "device " << i << ": server " << n
                  << " is not reachable from base station " << k);
    const auto& bs = topo.base_station(topology::BaseStationId{k});
    sqrt_compute[i] =
        std::sqrt(state.task_cycles[i] / instance.suitability(i, n));
    sqrt_access[i] = std::sqrt(state.data_bits[i] / h);
    sqrt_fronthaul[i] =
        std::sqrt(state.data_bits[i] / bs.fronthaul_spectral_efficiency);
    server_denominator[n] += sqrt_compute[i];
    access_denominator[k] += sqrt_access[i];
    fronthaul_denominator[k] += sqrt_fronthaul[i];
  }

  ResourceAllocation alloc;
  alloc.phi.resize(devices);
  alloc.psi_access.resize(devices);
  alloc.psi_fronthaul.resize(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    const std::size_t k = assignment.bs_of[i];
    const std::size_t n = assignment.server_of[i];
    alloc.phi[i] = sqrt_compute[i] / server_denominator[n];
    alloc.psi_access[i] = sqrt_access[i] / access_denominator[k];
    alloc.psi_fronthaul[i] = sqrt_fronthaul[i] / fronthaul_denominator[k];
  }
  return alloc;
}

}  // namespace eotora::core
