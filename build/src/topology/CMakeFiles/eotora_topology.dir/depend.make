# Empty dependencies file for eotora_topology.
# This may be replaced when dependencies are built.
