#include "math/projgrad.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace eotora::math {

std::vector<double> project_to_simplex(std::vector<double> v, double radius) {
  EOTORA_REQUIRE(radius > 0.0);
  EOTORA_REQUIRE(!v.empty());
  // Duchi et al.: sort descending, find the largest rho with
  // u[rho] - (cumsum(u[0..rho]) - radius) / (rho + 1) > 0.
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<>());
  double cumsum = 0.0;
  // i = 0 always satisfies the condition in exact arithmetic
  // (u[0] - (u[0] - radius) = radius > 0), so initialize from it and let
  // later indices improve; this keeps the routine robust to the FP edge case
  // where u[0] - theta rounds to zero for huge inputs.
  double best_theta = u[0] - radius;
  cumsum = u[0];
  for (std::size_t i = 1; i < u.size(); ++i) {
    cumsum += u[i];
    const double theta = (cumsum - radius) / static_cast<double>(i + 1);
    if (u[i] - theta > 0.0) {
      best_theta = theta;
    }
  }
  for (double& x : v) x = std::max(0.0, x - best_theta);
  return v;
}

SimplexMinResult minimize_inverse_over_simplex(const std::vector<double>& costs,
                                               double radius,
                                               int max_iterations,
                                               double floor_eps) {
  EOTORA_REQUIRE(!costs.empty());
  EOTORA_REQUIRE(radius > 0.0);
  for (double c : costs) EOTORA_REQUIRE_MSG(c > 0.0, "cost=" << c);

  const std::size_t n = costs.size();
  SimplexMinResult result;
  // Start from the uniform interior point.
  result.x.assign(n, radius / static_cast<double>(n));

  auto objective = [&](const std::vector<double>& x) {
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) v += costs[i] / x[i];
    return v;
  };
  auto interiorize = [&](std::vector<double> x) {
    x = project_to_simplex(std::move(x), radius);
    for (double& xi : x) xi = std::max(xi, floor_eps);
    return x;
  };

  double value = objective(result.x);
  double step = radius;  // backtracking shrinks this as needed
  std::vector<double> grad(n, 0.0);
  std::vector<double> candidate(n, 0.0);
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    double grad_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = -costs[i] / (result.x[i] * result.x[i]);
      grad_norm += grad[i] * grad[i];
    }
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm == 0.0) break;

    // Backtracking: accept the first step that strictly improves the
    // objective; monotone descent keeps iterates well-behaved despite the
    // 1/x barrier.
    bool improved = false;
    double trial_step = step;
    for (int halving = 0; halving < 60; ++halving) {
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = result.x[i] - trial_step / grad_norm * grad[i];
      }
      candidate = interiorize(std::move(candidate));
      const double candidate_value = objective(candidate);
      if (candidate_value < value) {
        result.x = candidate;
        value = candidate_value;
        improved = true;
        // Gentle growth so the step adapts upward after easy progress.
        step = trial_step * 2.0;
        break;
      }
      trial_step *= 0.5;
    }
    if (!improved) break;  // stationary to line-search resolution
  }
  result.value = value;
  result.iterations = iter;
  return result;
}

}  // namespace eotora::math
