// The streaming state pipeline: StateSource implementations must deliver
// byte-identical sequences to the materialized era, and run_policy over a
// stream must be bit-for-bit equal to run_policy over the pre-generated
// vector — that equivalence is what lets the goldens stand untouched.
#include "sim/state_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "sim/registry.h"
#include "sim/replay.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace eotora::sim {
namespace {

ScenarioConfig tiny() {
  ScenarioConfig config;
  config.devices = 6;
  config.mid_band_stations = 2;
  config.low_band_stations = 1;
  config.clusters = 1;
  config.servers_per_cluster = 2;
  config.seed = 7;
  return config;
}

void expect_states_equal(const core::SlotState& a, const core::SlotState& b,
                         std::size_t t) {
  EXPECT_EQ(a.slot, b.slot) << "slot index " << t;
  EXPECT_EQ(a.price_per_mwh, b.price_per_mwh) << "slot index " << t;
  EXPECT_EQ(a.task_cycles, b.task_cycles) << "slot index " << t;
  EXPECT_EQ(a.data_bits, b.data_bits) << "slot index " << t;
  EXPECT_EQ(a.channel, b.channel) << "slot index " << t;
}

std::vector<core::SlotState> drain(StateSource& source) {
  std::vector<core::SlotState> states;
  core::SlotState state;
  while (source.next(state)) states.push_back(state);
  return states;
}

TEST(MaterializedSourceTest, DeliversTheVectorThenExhausts) {
  Scenario scenario(tiny());
  const auto states = scenario.generate_states(5);
  MaterializedSource source(states);
  EXPECT_EQ(source.size_hint(), 5u);
  const auto streamed = drain(source);
  ASSERT_EQ(streamed.size(), states.size());
  for (std::size_t t = 0; t < states.size(); ++t) {
    expect_states_equal(streamed[t], states[t], t);
  }
  core::SlotState extra;
  EXPECT_FALSE(source.next(extra));
  source.reset();
  EXPECT_TRUE(source.next(extra));
  expect_states_equal(extra, states[0], 0);
}

TEST(MaterializedSourceTest, OwningConstructorKeepsTheStates) {
  Scenario scenario(tiny());
  auto states = scenario.generate_states(3);
  const auto copy = states;
  MaterializedSource source(std::move(states));
  const auto streamed = drain(source);
  ASSERT_EQ(streamed.size(), copy.size());
  for (std::size_t t = 0; t < copy.size(); ++t) {
    expect_states_equal(streamed[t], copy[t], t);
  }
}

TEST(ScenarioSourceTest, MatchesGenerateStatesExactly) {
  Scenario materialized(tiny());
  const auto states = materialized.generate_states(10);
  ScenarioSource source(tiny(), 10);
  EXPECT_EQ(source.size_hint(), 10u);
  const auto streamed = drain(source);
  ASSERT_EQ(streamed.size(), states.size());
  for (std::size_t t = 0; t < states.size(); ++t) {
    expect_states_equal(streamed[t], states[t], t);
  }
}

TEST(ScenarioSourceTest, ResetReplaysTheIdenticalSequence) {
  ScenarioSource source(tiny(), 6);
  const auto first = drain(source);
  source.reset();
  const auto second = drain(source);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    expect_states_equal(first[t], second[t], t);
  }
}

TEST(ScenarioSourceTest, InPlaceGenerationReusesTheBuffers) {
  Scenario scenario(tiny());
  core::SlotState state;
  scenario.next_state(state);  // settle the shapes
  const double* task_data = state.task_cycles.data();
  const double* bits_data = state.data_bits.data();
  const double* channel_row0 = state.channel.front().data();
  const auto* channel_rows = state.channel.data();
  for (int t = 0; t < 20; ++t) {
    scenario.next_state(state);
    // Same capacity refilled in place: no per-slot allocations, so the
    // data pointers must not move.
    EXPECT_EQ(state.task_cycles.data(), task_data);
    EXPECT_EQ(state.data_bits.data(), bits_data);
    EXPECT_EQ(state.channel.data(), channel_rows);
    EXPECT_EQ(state.channel.front().data(), channel_row0);
  }
}

TEST(ScenarioSourceTest, InPlaceAndValueFormsDrawTheSameStream) {
  Scenario by_value(tiny());
  Scenario in_place(tiny());
  core::SlotState buffer;
  for (std::size_t t = 0; t < 8; ++t) {
    const core::SlotState fresh = by_value.next_state();
    in_place.next_state(buffer);
    expect_states_equal(fresh, buffer, t);
  }
}

TEST(ReplaySourceTest, StreamsWhatLoadStatesParses) {
  const std::string path = "/tmp/eotora_test_state_source_replay.csv";
  Scenario scenario(tiny());
  const auto states = scenario.generate_states(7);
  save_states(path, states);
  const auto loaded = load_states(path);
  ReplaySource source(path);
  EXPECT_EQ(source.devices(), tiny().devices);
  const auto streamed = drain(source);
  std::remove(path.c_str());
  ASSERT_EQ(streamed.size(), loaded.size());
  for (std::size_t t = 0; t < loaded.size(); ++t) {
    expect_states_equal(streamed[t], loaded[t], t);
  }
}

TEST(ReplaySourceTest, ResetRewindsToTheFirstRow) {
  const std::string path = "/tmp/eotora_test_state_source_reset.csv";
  Scenario scenario(tiny());
  save_states(path, scenario.generate_states(4));
  ReplaySource source(path);
  const auto first = drain(source);
  source.reset();
  const auto second = drain(source);
  std::remove(path.c_str());
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    expect_states_equal(first[t], second[t], t);
  }
}

TEST(RecordingSourceTest, TeeWritesAReplayableCsv) {
  const std::string path = "/tmp/eotora_test_state_source_tee.csv";
  ScenarioSource inner(tiny(), 5);
  RecordingSource tee(inner, path);
  const auto streamed = drain(tee);
  const auto loaded = load_states(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), streamed.size());
  for (std::size_t t = 0; t < streamed.size(); ++t) {
    expect_states_equal(loaded[t], streamed[t], t);
  }
}

TEST(PrefetchSourceTest, DeliversTheInnerSequenceUnchanged) {
  ScenarioSource reference(tiny(), 12);
  const auto expected = drain(reference);
  ScenarioSource inner(tiny(), 12);
  PrefetchSource prefetch(inner);
  EXPECT_EQ(prefetch.size_hint(), 12u);
  const auto streamed = drain(prefetch);
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    expect_states_equal(streamed[t], expected[t], t);
  }
  core::SlotState extra;
  EXPECT_FALSE(prefetch.next(extra));
}

TEST(PrefetchSourceTest, ResetReplays) {
  ScenarioSource inner(tiny(), 5);
  PrefetchSource prefetch(inner);
  const auto first = drain(prefetch);
  prefetch.reset();
  const auto second = drain(prefetch);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    expect_states_equal(first[t], second[t], t);
  }
}

// Streams `good_slots` states from a ScenarioSource, then throws from
// next() — the producer-side failure mode (e.g. a ReplaySource hitting a
// malformed CSV row mid-stream).
class ThrowingSource final : public StateSource {
 public:
  ThrowingSource(const ScenarioConfig& config, std::size_t good_slots)
      : inner_(config, good_slots + 1), good_slots_(good_slots) {}

  bool next(core::SlotState& out) override {
    if (produced_ >= good_slots_) {
      throw std::runtime_error("synthetic stream failure");
    }
    ++produced_;
    return inner_.next(out);
  }
  void reset() override {
    inner_.reset();
    produced_ = 0;
  }

 private:
  ScenarioSource inner_;
  std::size_t good_slots_;
  std::size_t produced_ = 0;
};

// The PR 5 bugfix: a producer error must NOT jump the queue. Every slot
// the inner source produced before throwing is delivered first — prefetch
// matches plain streaming slot-for-slot up to the failure — and only then
// does next() rethrow.
TEST(PrefetchSourceTest, DrainsProducedSlotsBeforeRethrowingProducerError) {
  constexpr std::size_t kGoodSlots = 8;
  // Reference: drain the throwing source directly (plain streaming).
  ThrowingSource reference(tiny(), kGoodSlots);
  std::vector<core::SlotState> expected;
  core::SlotState buffer;
  for (std::size_t t = 0; t < kGoodSlots; ++t) {
    ASSERT_TRUE(reference.next(buffer));
    expected.push_back(buffer);
  }
  EXPECT_THROW(reference.next(buffer), std::runtime_error);

  ThrowingSource inner(tiny(), kGoodSlots);
  // depth > good_slots lets the producer buffer everything AND hit the
  // error long before the consumer asks — the order the old code got wrong.
  PrefetchSource prefetch(inner, /*depth=*/kGoodSlots + 2);
  std::vector<core::SlotState> streamed;
  try {
    core::SlotState state;
    while (prefetch.next(state)) streamed.push_back(state);
    FAIL() << "prefetch swallowed the producer error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "synthetic stream failure");
  }
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    expect_states_equal(streamed[t], expected[t], t);
  }
}

// After the rethrow the stream is terminal: subsequent next() calls keep
// rethrowing the same error rather than resuming data delivery or
// reporting a clean end of stream. reset() recovers.
TEST(PrefetchSourceTest, ProducerErrorIsTerminalUntilReset) {
  constexpr std::size_t kGoodSlots = 3;
  ThrowingSource inner(tiny(), kGoodSlots);
  PrefetchSource prefetch(inner, /*depth=*/kGoodSlots + 2);
  core::SlotState state;
  std::size_t delivered = 0;
  try {
    while (prefetch.next(state)) ++delivered;
    FAIL() << "prefetch swallowed the producer error";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(delivered, kGoodSlots);
  // Still throwing — and still the SAME error, not a clean end.
  EXPECT_THROW(prefetch.next(state), std::runtime_error);
  EXPECT_THROW(prefetch.next(state), std::runtime_error);
  // reset() rewinds the inner source and clears the error.
  prefetch.reset();
  EXPECT_TRUE(prefetch.next(state));
}

TEST(PrefetchSourceTest, StatsCountDeliveriesAndRestartOnReset) {
  ScenarioSource inner(tiny(), 7);
  PrefetchSource prefetch(inner);
  const auto first = drain(prefetch);
  ASSERT_EQ(first.size(), 7u);
  const auto stats = prefetch.stats();
  EXPECT_EQ(stats.delivered, 7u);
  EXPECT_GE(stats.max_ready_depth, 1u);
  EXPECT_GE(stats.ready_depth_sum, stats.delivered);
  prefetch.reset();
  EXPECT_EQ(prefetch.stats().delivered, 0u);
}

// The tentpole guarantee: for EVERY registered policy and several seeds,
// run_policy over a ScenarioSource is bit-for-bit identical to run_policy
// over the pre-generated vector of the same scenario. This is the
// differential that lets the 12 golden fixtures stand byte-identical with
// zero regeneration.
TEST(StreamingDifferentialTest, StreamingEqualsMaterializedForAllPolicies) {
  const std::size_t horizon = 6;
  for (const std::string& name : registered_policies()) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      ScenarioConfig config = tiny();
      config.seed = 100 + seed;
      PolicyParams params;
      params.bdma_iterations = 2;
      params.mcba_iterations = 200;
      params.mpc.window = 2;

      Scenario scenario(config);
      const auto states = scenario.generate_states(horizon);
      auto materialized_policy = make_policy(name, scenario.instance(), params);
      const auto materialized = run_policy(*materialized_policy, states, seed);

      ScenarioSource source(config, horizon);
      auto streaming_policy = make_policy(name, source.instance(), params);
      const auto streamed = run_policy(*streaming_policy, source, seed);

      SCOPED_TRACE("policy=" + name + " seed=" + std::to_string(seed));
      EXPECT_EQ(materialized.policy_name, streamed.policy_name);
      ASSERT_EQ(materialized.metrics.slots(), streamed.metrics.slots());
      // Bit-for-bit: the full per-slot series compare with double ==.
      EXPECT_EQ(materialized.metrics.latency_series(),
                streamed.metrics.latency_series());
      EXPECT_EQ(materialized.metrics.cost_series(),
                streamed.metrics.cost_series());
      EXPECT_EQ(materialized.metrics.queue_series(),
                streamed.metrics.queue_series());
      EXPECT_EQ(materialized.metrics.average_latency(),
                streamed.metrics.average_latency());
      EXPECT_EQ(materialized.metrics.average_energy_cost(),
                streamed.metrics.average_energy_cost());
      EXPECT_EQ(materialized.metrics.average_queue(),
                streamed.metrics.average_queue());
    }
  }
}

TEST(StreamingRunPolicyTest, AuditedOverloadMatchesMaterialized) {
  ScenarioConfig config = tiny();
  const std::size_t horizon = 5;
  AuditConfig audit;
  audit.mode = AuditMode::kEverySlot;

  Scenario scenario(config);
  const auto states = scenario.generate_states(horizon);
  auto policy_a = make_policy("dpp-bdma", scenario.instance());
  const auto materialized =
      run_policy(*policy_a, scenario.instance(), states, audit, 4);

  ScenarioSource source(config, horizon);
  auto policy_b = make_policy("dpp-bdma", source.instance());
  const auto streamed =
      run_policy(*policy_b, source.instance(), source, audit, 4);

  EXPECT_EQ(materialized.audit.slots_audited, streamed.audit.slots_audited);
  EXPECT_EQ(materialized.audit.total_violations(),
            streamed.audit.total_violations());
  EXPECT_EQ(materialized.metrics.latency_series(),
            streamed.metrics.latency_series());
}

TEST(StreamingRunPolicyTest, EmptySourceThrows) {
  const std::vector<core::SlotState> empty;
  MaterializedSource source(empty);
  Scenario scenario(tiny());
  auto policy = make_policy("fixed-min", scenario.instance());
  EXPECT_THROW((void)run_policy(*policy, source), std::invalid_argument);
}

TEST(StreamingRunPolicyTest, KeepSeriesFalseKeepsAggregatesOnly) {
  ScenarioConfig config = tiny();
  const std::size_t horizon = 6;
  ScenarioSource source(config, horizon);
  auto policy = make_policy("dpp-bdma", source.instance());
  const auto lean = run_policy(*policy, source, 1, /*keep_series=*/false);

  Scenario scenario(config);
  const auto states = scenario.generate_states(horizon);
  auto reference_policy = make_policy("dpp-bdma", scenario.instance());
  const auto full = run_policy(*reference_policy, states, 1);

  EXPECT_FALSE(lean.metrics.keeps_series());
  EXPECT_TRUE(lean.metrics.latency_series().empty());
  EXPECT_EQ(lean.metrics.slots(), full.metrics.slots());
  EXPECT_EQ(lean.metrics.average_latency(), full.metrics.average_latency());
  EXPECT_EQ(lean.metrics.average_energy_cost(),
            full.metrics.average_energy_cost());
  EXPECT_EQ(lean.metrics.average_queue(), full.metrics.average_queue());
  EXPECT_EQ(lean.metrics.max_queue(), full.metrics.max_queue());
  EXPECT_THROW((void)lean.metrics.latency_percentile(95.0), std::logic_error);
  EXPECT_THROW((void)tail_averages(lean, 2), std::invalid_argument);
}

TEST(MetricsKeepSeriesTest, CannotFlipAfterRecording) {
  core::MetricsCollector metrics;
  core::DppSlotResult slot;
  slot.decision.frequencies = {1.0};
  metrics.record(slot);
  EXPECT_THROW(metrics.set_keep_series(false), std::invalid_argument);
}

TEST(TailAveragesTest, OversizedWindowNamesBothValues) {
  Scenario scenario(tiny());
  const auto states = scenario.generate_states(4);
  auto policy = make_policy("fixed-min", scenario.instance());
  const auto result = run_policy(*policy, states, 1);
  try {
    (void)tail_averages(result, 10);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("window=10"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace eotora::sim
