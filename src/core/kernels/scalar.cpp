// Portable scalar backend — the reference semantics every SIMD backend must
// reproduce bit-for-bit on the default path.
#include "core/kernels/kernels_detail.h"

namespace eotora::core::kernels::detail {

namespace {

bool scalar_supported() { return true; }

constexpr Backend kScalar{
    "scalar",
    "portable reference backend (always available)",
    &scalar_supported,
    &sqrt_div_scalar,
    &div_gather_scalar,
    &scan_scalar,
    &p2b_bisect_scalar,
    &weighted_sumsq_scalar,
    // The scalar backend's "fast" reduction is the exact one: there is no
    // reassociation to exploit without lanes.
    &weighted_sumsq_scalar,
};

}  // namespace

const Backend* scalar_backend() { return &kScalar; }

}  // namespace eotora::core::kernels::detail
