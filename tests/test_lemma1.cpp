#include "core/lemma1.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/latency.h"
#include "math/projgrad.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace eotora::core {
namespace {

Assignment all_to(std::size_t bs, std::size_t server, std::size_t devices) {
  Assignment a;
  a.bs_of.assign(devices, bs);
  a.server_of.assign(devices, server);
  return a;
}

TEST(Lemma1, SharesFollowClosedForm) {
  const Instance instance = test::tiny_instance(3);
  SlotState state = test::uniform_state(3, 2);
  state.task_cycles = {1e8, 4e8, 9e8};  // sqrt ratio 1:2:3
  const Assignment assignment = all_to(0, 0, 3);
  const auto alloc = optimal_allocation(instance, state, assignment);
  EXPECT_NEAR(alloc.phi[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(alloc.phi[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(alloc.phi[2], 3.0 / 6.0, 1e-12);
}

TEST(Lemma1, SharesSumToOnePerResource) {
  const Instance instance = test::tiny_instance(4);
  util::Rng rng(31);
  const SlotState state = test::random_state(4, 2, rng);
  // Split: devices 0,1 -> (bs0, s0); devices 2,3 -> (bs1, s2).
  Assignment assignment;
  assignment.bs_of = {0, 0, 1, 1};
  assignment.server_of = {0, 0, 2, 2};
  const auto alloc = optimal_allocation(instance, state, assignment);
  EXPECT_NEAR(alloc.phi[0] + alloc.phi[1], 1.0, 1e-12);
  EXPECT_NEAR(alloc.phi[2] + alloc.phi[3], 1.0, 1e-12);
  EXPECT_NEAR(alloc.psi_access[0] + alloc.psi_access[1], 1.0, 1e-12);
  EXPECT_NEAR(alloc.psi_access[2] + alloc.psi_access[3], 1.0, 1e-12);
  EXPECT_NEAR(alloc.psi_fronthaul[0] + alloc.psi_fronthaul[1], 1.0, 1e-12);
  EXPECT_TRUE(allocation_feasible(instance, assignment, alloc));
}

TEST(Lemma1, SoloDeviceGetsFullShare) {
  const Instance instance = test::tiny_instance(1);
  const SlotState state = test::uniform_state(1, 2);
  const auto alloc =
      optimal_allocation(instance, state, all_to(0, 1, 1));
  EXPECT_DOUBLE_EQ(alloc.phi[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc.psi_access[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc.psi_fronthaul[0], 1.0);
}

TEST(Lemma1, RejectsUnreachableServer) {
  const Instance instance = test::tiny_instance(1);
  const SlotState state = test::uniform_state(1, 2);
  // bs-1 only reaches room-1 (server 2); server 0 is infeasible from bs-1.
  EXPECT_THROW((void)optimal_allocation(instance, state, all_to(1, 0, 1)),
               std::invalid_argument);
}

TEST(Lemma1, RejectsUnusableChannel) {
  const Instance instance = test::tiny_instance(1);
  SlotState state = test::uniform_state(1, 2);
  state.channel[0][0] = 0.0;
  EXPECT_THROW((void)optimal_allocation(instance, state, all_to(0, 0, 1)),
               std::invalid_argument);
}

// The optimality heart of Lemma 1: the closed form must (weakly) beat a
// numeric projected-gradient solver and every random feasible allocation.
class Lemma1Optimality : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Optimality, BeatsNumericOracleAndRandomAllocations) {
  util::Rng rng(1000 + GetParam());
  const std::size_t devices = 3 + rng.index(3);
  const Instance instance = test::tiny_instance(devices);
  const SlotState state = test::random_state(devices, 2, rng);

  // Random feasible assignment: bs0 reaches all three servers.
  Assignment assignment;
  for (std::size_t i = 0; i < devices; ++i) {
    assignment.bs_of.push_back(0);
    assignment.server_of.push_back(rng.index(3));
  }
  const Frequencies freq = instance.max_frequencies();
  const auto closed_form = optimal_allocation(instance, state, assignment);
  const double best = latency_under_allocation(instance, state, assignment,
                                               freq, closed_form);

  // Numeric oracle on the compute simplex of server 0 (if shared): the
  // projected-gradient solution can not do better than the closed form.
  // Here we check the full objective against randomized allocations.
  for (int trial = 0; trial < 30; ++trial) {
    ResourceAllocation random_alloc = closed_form;
    // Random positive shares renormalized per resource.
    std::vector<double> phi_sum(instance.num_servers(), 0.0);
    std::vector<double> a_sum(instance.num_base_stations(), 0.0);
    std::vector<double> f_sum(instance.num_base_stations(), 0.0);
    for (std::size_t i = 0; i < devices; ++i) {
      random_alloc.phi[i] = rng.uniform(0.05, 1.0);
      random_alloc.psi_access[i] = rng.uniform(0.05, 1.0);
      random_alloc.psi_fronthaul[i] = rng.uniform(0.05, 1.0);
      phi_sum[assignment.server_of[i]] += random_alloc.phi[i];
      a_sum[assignment.bs_of[i]] += random_alloc.psi_access[i];
      f_sum[assignment.bs_of[i]] += random_alloc.psi_fronthaul[i];
    }
    for (std::size_t i = 0; i < devices; ++i) {
      random_alloc.phi[i] /= phi_sum[assignment.server_of[i]];
      random_alloc.psi_access[i] /= a_sum[assignment.bs_of[i]];
      random_alloc.psi_fronthaul[i] /= f_sum[assignment.bs_of[i]];
    }
    const double value = latency_under_allocation(instance, state, assignment,
                                                  freq, random_alloc);
    EXPECT_GE(value, best - 1e-9 * best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Optimality, ::testing::Range(0, 10));

// Cross-check the per-resource share against the projected-gradient oracle:
// min Σ c_i/φ_i over the simplex, with c_i = f_i/(capacity·σ).
TEST(Lemma1, AgreesWithProjectedGradientOracle) {
  util::Rng rng(77);
  const std::size_t devices = 4;
  const Instance instance = test::tiny_instance(devices);
  SlotState state = test::uniform_state(devices, 2);
  for (auto& f : state.task_cycles) f = rng.uniform(5e7, 2e8);
  const Assignment assignment = [&] {
    Assignment a;
    a.bs_of.assign(devices, 0);
    a.server_of.assign(devices, 1);
    return a;
  }();
  const auto alloc = optimal_allocation(instance, state, assignment);
  std::vector<double> costs(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    costs[i] = state.task_cycles[i];  // common factors cancel in the argmin
  }
  const auto oracle = math::minimize_inverse_over_simplex(costs);
  for (std::size_t i = 0; i < devices; ++i) {
    EXPECT_NEAR(alloc.phi[i], oracle.x[i], 5e-3);
  }
}

}  // namespace
}  // namespace eotora::core
