# Empty dependencies file for fig5_p2a_runtime.
# This may be replaced when dependencies are built.
