// Ablation — robustness across seeds: does the Fig. 9 ranking (BDMA-DPP <
// MCBA-DPP < ROPT-DPP in latency) survive topology and trace re-draws, and
// how wide are the confidence intervals?
#include <iostream>

#include "eotora/eotora.h"
#include "sim/experiment.h"

int main() {
  using namespace eotora;
  const std::size_t horizon = 24 * 4;
  const std::size_t replications = 5;

  sim::ScenarioConfig base;
  base.devices = 80;
  base.budget_per_slot = 1.0;
  base.seed = 9000;

  std::cout << "Ablation: policy ranking across " << replications
            << " independent scenario seeds (I = " << base.devices << ", "
            << horizon << " slots each)\n\n";

  auto factory = [](core::P2aSolverKind kind) {
    return [kind](const core::Instance& instance)
               -> std::unique_ptr<sim::Policy> {
      core::DppConfig config;
      config.v = 100.0;
      config.initial_queue = 20.0;
      config.bdma.iterations = 3;
      config.bdma.solver = kind;
      config.bdma.mcba.iterations = 2000;
      return std::make_unique<sim::DppPolicy>(instance, config);
    };
  };

  util::Table table({"policy", "latency mean (s)", "latency 95% CI",
                     "latency min..max", "cost mean ($/slot)"});
  for (core::P2aSolverKind kind :
       {core::P2aSolverKind::kCgba, core::P2aSolverKind::kMcba,
        core::P2aSolverKind::kRopt}) {
    const auto summary =
        sim::replicate(base, factory(kind), horizon, replications);
    table.add_row(
        {summary.policy_name,
         util::format_double(summary.latency.mean(), 3),
         "+/- " + util::format_double(summary.latency_ci_halfwidth(), 3),
         util::format_double(summary.latency.min(), 2) + ".." +
             util::format_double(summary.latency.max(), 2),
         util::format_double(summary.cost.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the BDMA < MCBA < ROPT latency ranking holds for "
               "every seed, and the CI separation shows it is not a "
               "single-draw artifact.\n";
  return 0;
}
