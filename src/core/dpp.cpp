#include "core/dpp.h"

#include <algorithm>

#include "util/check.h"
#include "util/trace.h"

namespace eotora::core {

DppController::DppController(const Instance& instance, DppConfig config)
    : instance_(&instance), config_(config), queue_(config.initial_queue) {
  EOTORA_REQUIRE_MSG(config.v > 0.0, "V=" << config.v);
  EOTORA_REQUIRE_MSG(config.initial_queue >= 0.0,
                     "Q(1)=" << config.initial_queue);
}

DppSlotResult DppController::step(const SlotState& state, util::Rng& rng) {
  DppSlotResult result;
  result.queue_before = queue_;

  BdmaResult solution;
  {
    EOTORA_TRACE_SPAN("dpp/bdma");
    solution = bdma(*instance_, state, config_.v, queue_, config_.bdma, rng,
                    workspace_);
  }

  result.decision.assignment = solution.assignment;
  result.decision.frequencies = solution.frequencies;
  result.decision.allocation =
      optimal_allocation(*instance_, state, solution.assignment);
  result.latency = solution.latency;
  result.theta = solution.theta;
  result.energy_cost = solution.theta + instance_->budget_per_slot();
  result.objective = solution.objective;
  result.p2a_iterations = solution.p2a_iterations;

  // Eq. (21): queue update.
  queue_ = std::max(queue_ + solution.theta, 0.0);
  result.queue_after = queue_;
  return result;
}

}  // namespace eotora::core
