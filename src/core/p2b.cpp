#include "core/p2b.h"

#include <cmath>

#include "core/latency.h"
#include "math/minimize1d.h"
#include "util/check.h"

namespace eotora::core {

P2bResult solve_p2b(const Instance& instance, const SlotState& state,
                    const Assignment& assignment, double v, double q,
                    double tolerance) {
  EOTORA_REQUIRE_MSG(v >= 0.0, "V=" << v);
  EOTORA_REQUIRE_MSG(q >= 0.0, "Q=" << q);
  const auto& topo = instance.topology();
  const std::size_t devices = instance.num_devices();
  EOTORA_REQUIRE(assignment.server_of.size() == devices);

  // Per-server load sums Σ_{i on n} sqrt(f_i / σ_{i,n}).
  std::vector<double> load(topo.num_servers(), 0.0);
  for (std::size_t i = 0; i < devices; ++i) {
    const std::size_t n = assignment.server_of[i];
    EOTORA_REQUIRE(n < topo.num_servers());
    load[n] += std::sqrt(state.task_cycles[i] / instance.suitability(i, n));
  }

  P2bResult result;
  result.frequencies.resize(topo.num_servers());
  const double price = state.price_per_mwh;
  for (std::size_t n = 0; n < topo.num_servers(); ++n) {
    const auto& server = topo.server(topology::ServerId{n});
    const double a_n = load[n] * load[n];
    if (q == 0.0 && a_n > 0.0) {
      // No queue pressure: latency dominates, run flat out.
      result.frequencies[n] = server.freq_max_ghz;
      continue;
    }
    if (a_n == 0.0) {
      // Idle server: only the energy term remains; its minimum over a convex
      // nondecreasing cost is the lowest frequency.
      result.frequencies[n] = server.freq_min_ghz;
      continue;
    }
    const double cores = static_cast<double>(server.cores);
    const double cost_scale = q * price * instance.slot_hours() / 1e6;
    auto objective = [&](double w) {
      return v * a_n / (cores * w * 1e9) +
             cost_scale * server.power_watts(w);
    };
    auto derivative = [&](double w) {
      return -v * a_n / (cores * w * w * 1e9) +
             cost_scale * server.power_derivative_watts(w);
    };
    const auto minimum = math::derivative_bisection(
        objective, derivative, server.freq_min_ghz, server.freq_max_ghz,
        tolerance);
    result.frequencies[n] = minimum.x;
  }
  result.objective =
      dpp_objective(instance, state, assignment, result.frequencies, v, q);
  return result;
}

double dpp_objective(const Instance& instance, const SlotState& state,
                     const Assignment& assignment,
                     const Frequencies& frequencies, double v, double q) {
  const double latency =
      reduced_latency(instance, state, assignment, frequencies);
  const double theta = instance.theta(frequencies, state.price_per_mwh);
  return v * latency + q * theta;
}

}  // namespace eotora::core
