#include "sim/mpc_policy.h"

#include <cmath>

#include "core/cgba.h"
#include "core/latency.h"
#include "core/lemma1.h"
#include "core/wcg.h"
#include "math/minimize1d.h"
#include "util/check.h"

namespace eotora::sim {

std::vector<double> mpc_compute_load(const core::Instance& instance,
                                     const core::SlotState& state,
                                     const core::Assignment& assignment) {
  std::vector<double> compute_load(instance.num_servers(), 0.0);
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    const std::size_t n = assignment.server_of[i];
    compute_load[n] +=
        std::sqrt(state.task_cycles[i] / instance.suitability(i, n));
  }
  return compute_load;
}

core::Frequencies mpc_frequencies_for(const core::Instance& instance,
                                      const std::vector<double>& compute_load,
                                      double lambda, double price) {
  const auto& topo = instance.topology();
  core::Frequencies freq(topo.num_servers());
  for (std::size_t n = 0; n < topo.num_servers(); ++n) {
    const auto& server = topo.server(topology::ServerId{n});
    const double a_n = compute_load[n] * compute_load[n];
    if (a_n == 0.0) {
      freq[n] = server.freq_min_ghz;
      continue;
    }
    if (lambda == 0.0) {
      freq[n] = server.freq_max_ghz;
      continue;
    }
    const double cores = static_cast<double>(server.cores);
    const double cost_scale = lambda * price * instance.slot_hours() / 1e6;
    auto objective = [&](double w) {
      return a_n / (cores * w * 1e9) + cost_scale * server.power_watts(w);
    };
    auto derivative = [&](double w) {
      return -a_n / (cores * w * w * 1e9) +
             cost_scale * server.power_derivative_watts(w);
    };
    freq[n] = math::derivative_bisection(objective, derivative,
                                         server.freq_min_ghz,
                                         server.freq_max_ghz, 1e-7)
                  .x;
  }
  return freq;
}

double mpc_window_cost(const core::Instance& instance,
                       const std::vector<double>& compute_load, double lambda,
                       const std::vector<double>& prices,
                       const std::vector<double>& load_scale) {
  double total = 0.0;
  std::vector<double> scaled(compute_load.size());
  for (std::size_t w = 0; w < prices.size(); ++w) {
    for (std::size_t n = 0; n < compute_load.size(); ++n) {
      scaled[n] = compute_load[n] * load_scale[w];
    }
    const auto freq = mpc_frequencies_for(instance, scaled, lambda, prices[w]);
    total += instance.energy_cost(freq, prices[w]);
  }
  return total;
}

MpcPlanInputs mpc_plan_inputs(const MpcConfig& config,
                              const core::Instance& instance,
                              const core::SlotState& state,
                              const trace::OnlineTrendEstimator& price_trend,
                              const trace::OnlineTrendEstimator& demand_trend) {
  MpcPlanInputs inputs;
  if (!(price_trend.ready() && demand_trend.ready())) {
    // Bootstrap: greedy per-slot budget via the multiplier at this slot
    // alone (window of one, current price).
    inputs.prices = {state.price_per_mwh};
    inputs.load_scale = {1.0};
    inputs.budget = instance.budget_per_slot();
    return inputs;
  }
  // Forecast the window by certainty equivalence.
  const std::size_t phase_now =
      (price_trend.observations() - 1) % config.period;
  inputs.prices.resize(config.window);
  inputs.load_scale.resize(config.window);
  const double demand_now = demand_trend.trend_at(phase_now);
  inputs.prices[0] = state.price_per_mwh;  // the current slot is observed
  inputs.load_scale[0] = 1.0;
  for (std::size_t w = 1; w < config.window; ++w) {
    const std::size_t phase = (phase_now + w) % config.period;
    inputs.prices[w] = price_trend.trend_at(phase);
    inputs.load_scale[w] =
        demand_now > 0.0
            ? std::sqrt(demand_trend.trend_at(phase) / demand_now)
            : 1.0;
  }
  // One multiplier for the window so forecast spend == window budget.
  inputs.budget =
      instance.budget_per_slot() * static_cast<double>(config.window);
  return inputs;
}

double mpc_plan_multiplier(const MpcConfig& config,
                           const core::Instance& instance,
                           const std::vector<double>& compute_load,
                           const MpcPlanInputs& inputs) {
  double lambda = 0.0;
  if (mpc_window_cost(instance, compute_load, 0.0, inputs.prices,
                      inputs.load_scale) > inputs.budget) {
    double lo = 0.0;
    double hi = config.max_multiplier;
    for (int iter = 0; iter < config.bisection_iterations; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (mpc_window_cost(instance, compute_load, mid, inputs.prices,
                          inputs.load_scale) <= inputs.budget) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    lambda = hi;
  }
  return lambda;
}

MpcPolicy::MpcPolicy(const core::Instance& instance, MpcConfig config)
    : instance_(&instance),
      config_(config),
      price_trend_(config.period, config.trend_alpha),
      demand_trend_(config.period, config.trend_alpha) {
  EOTORA_REQUIRE(config.window >= 1);
  EOTORA_REQUIRE(config.period >= 1);
  EOTORA_REQUIRE(config.bisection_iterations >= 1);
  EOTORA_REQUIRE(config.max_multiplier > 0.0);
}

void MpcPolicy::reset() {
  price_trend_ = trace::OnlineTrendEstimator(config_.period,
                                             config_.trend_alpha);
  demand_trend_ = trace::OnlineTrendEstimator(config_.period,
                                              config_.trend_alpha);
  last_multiplier_ = 0.0;
}

bool MpcPolicy::forecasting() const {
  return price_trend_.ready() && demand_trend_.ready();
}

core::DppSlotResult MpcPolicy::step(const core::SlotState& state,
                                    util::Rng& rng) {
  // 1. Learn from the observation.
  price_trend_.observe(state.price_per_mwh);
  double mean_demand = 0.0;
  for (double f : state.task_cycles) mean_demand += f;
  mean_demand /= static_cast<double>(state.task_cycles.size());
  demand_trend_.observe(mean_demand);

  // Assignment: CGBA at the frequency floor (load shape, not speed, drives
  // the selection; P2-B-style reasoning fixes the speed afterwards).
  problem_.rebuild(*instance_, state, instance_->min_frequencies());
  const core::SolveResult p2a = core::cgba(problem_, config_.cgba, rng);
  const core::Assignment assignment = problem_.to_assignment(p2a.profile);

  // Current per-server load sums.
  const std::vector<double> compute_load =
      mpc_compute_load(*instance_, state, assignment);

  // 2-3. Forecast the window (or bootstrap) and pick its one multiplier.
  const MpcPlanInputs inputs =
      mpc_plan_inputs(config_, *instance_, state, price_trend_, demand_trend_);
  const double lambda =
      mpc_plan_multiplier(config_, *instance_, compute_load, inputs);
  last_multiplier_ = lambda;

  // 4. Execute the current slot at the planned multiplier.
  const core::Frequencies frequencies =
      mpc_frequencies_for(*instance_, compute_load, lambda,
                          state.price_per_mwh);

  core::DppSlotResult result;
  result.decision.assignment = assignment;
  result.decision.frequencies = frequencies;
  result.decision.allocation =
      core::optimal_allocation(*instance_, state, assignment);
  result.latency =
      core::reduced_latency(*instance_, state, assignment, frequencies);
  result.energy_cost =
      instance_->energy_cost(frequencies, state.price_per_mwh);
  result.theta = result.energy_cost - instance_->budget_per_slot();
  result.p2a_iterations = p2a.iterations;
  return result;
}

}  // namespace eotora::sim
