#include "sim/report.h"

#include <ostream>

#include "util/table.h"

namespace eotora::sim {

void print_comparison(std::ostream& os,
                      const std::vector<SimulationResult>& results,
                      double budget_per_slot) {
  util::Table table({"policy", "avg latency (s)", "avg cost ($/slot)",
                     "cost/budget", "avg backlog", "decision time (s)"});
  for (const auto& r : results) {
    table.add_row({r.policy_name,
                   util::format_double(r.metrics.average_latency(), 4),
                   util::format_double(r.metrics.average_energy_cost(), 4),
                   util::format_double(
                       r.metrics.average_energy_cost() / budget_per_slot, 3),
                   util::format_double(r.metrics.average_queue(), 4),
                   util::format_double(r.wall_seconds, 3)});
  }
  os << table.to_ascii();
}

void print_scenario(std::ostream& os, const Scenario& scenario) {
  const auto& topo = scenario.topology();
  const auto& config = scenario.config();
  os << "MEC scenario: " << topo.num_base_stations() << " base stations, "
     << topo.num_clusters() << " server rooms, " << topo.num_servers()
     << " servers, " << topo.num_devices() << " mobile devices\n"
     << "  region: " << topo.region().width << " m x " << topo.region().height
     << " m, period D = " << config.period << " slots\n"
     << "  energy budget: $" << config.budget_per_slot
     << " per slot (slot = " << config.slot_hours << " h)\n";
  os << "  servers:";
  for (const auto& server : topo.servers()) {
    os << ' ' << server.cores << "c";
  }
  os << "\n";
}

}  // namespace eotora::sim
