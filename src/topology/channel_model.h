// Time-varying access-link spectrum efficiency h_{i,k,t} (bps/Hz).
//
// Paper §VI-A draws each base station's access-link spectrum efficiency in
// [15, 50] bps/Hz. We make the per-(device, BS) efficiency time-varying as
// §III-A requires: a per-BS baseline (drawn from the paper's range), reduced
// with distance from the base station, plus per-pair AR(1) shadowing; the
// result is clamped back into [h_min, h_max]. Devices outside a BS's
// coverage get efficiency 0, which marks the link unusable.
#pragma once

#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace eotora::topology {

struct ChannelConfig {
  // How the per-pair mean efficiency falls off with distance.
  //   kLinear:      1 at the BS down to edge_factor at the coverage edge;
  //   kLogDistance: (d0 / d)^pathloss_exponent shape renormalized to hit
  //                 edge_factor at the edge — steeper near the BS, flatter
  //                 far out, the classic log-distance pathloss silhouette.
  enum class Attenuation { kLinear, kLogDistance };

  double min_efficiency = 15.0;  // bps/Hz (paper's lower draw bound)
  double max_efficiency = 50.0;  // bps/Hz (paper's upper draw bound)
  // Efficiency multiplier at the coverage edge (1.0 at the BS itself).
  double edge_factor = 0.6;
  Attenuation attenuation = Attenuation::kLinear;
  double pathloss_exponent = 2.0;     // kLogDistance only
  double reference_distance_m = 10.0; // d0 for kLogDistance
  // AR(1) shadowing: s_{t+1} = rho * s_t + noise, noise stddev in bps/Hz.
  double shadowing_rho = 0.9;
  double shadowing_stddev = 2.0;
};

// h_t as a dense I x K matrix; 0 marks an unusable (uncovered) link.
using ChannelMatrix = std::vector<std::vector<double>>;

class ChannelModel {
 public:
  // Draws per-BS baselines and initializes shadowing states.
  ChannelModel(const ChannelConfig& config, const Topology& topology,
               util::Rng rng);

  // Advances shadowing one slot and evaluates h for the devices' current
  // positions. Requires the same topology shape the model was built with.
  [[nodiscard]] ChannelMatrix step(const Topology& topology);

  // Same advance, refilling `out` in place (resized to I x K). Identical
  // RNG stream to step(); reuses the row vectors' capacity so a
  // steady-state caller allocates nothing per slot.
  void step_into(const Topology& topology, ChannelMatrix& out);

  [[nodiscard]] const std::vector<double>& base_efficiencies() const {
    return base_efficiency_;
  }
  [[nodiscard]] const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  std::size_t num_devices_;
  std::size_t num_base_stations_;
  std::vector<double> base_efficiency_;        // per BS
  std::vector<std::vector<double>> shadowing_; // per (device, BS)
  util::Rng rng_;
};

}  // namespace eotora::topology
