#include "core/beta_only.h"

#include <gtest/gtest.h>

#include "core/latency.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace eotora::core {
namespace {

TEST(BetaOnly, LooseTargetGivesPureLatencyMinimum) {
  util::Rng rng(1);
  const Instance instance = test::tiny_instance(5);
  const SlotState state = test::random_state(5, 2, rng);
  const double max_cost =
      instance.energy_cost(instance.max_frequencies(), state.price_per_mwh);
  const auto result = solve_beta_only(instance, state, max_cost * 2.0,
                                      BetaOnlyConfig{}, rng);
  EXPECT_DOUBLE_EQ(result.multiplier, 0.0);
  // Loaded servers run at max frequency.
  std::vector<bool> loaded(instance.num_servers(), false);
  for (std::size_t n : result.assignment.server_of) loaded[n] = true;
  for (std::size_t n = 0; n < instance.num_servers(); ++n) {
    if (loaded[n]) {
      EXPECT_DOUBLE_EQ(result.frequencies[n],
                       instance.max_frequencies()[n]);
    }
  }
}

TEST(BetaOnly, BindingTargetIsRespectedAndNearlySpent) {
  util::Rng rng(2);
  const Instance instance = test::tiny_instance(6);
  const SlotState state = test::random_state(6, 2, rng);
  const double lo_cost =
      instance.energy_cost(instance.min_frequencies(), state.price_per_mwh);
  const double hi_cost =
      instance.energy_cost(instance.max_frequencies(), state.price_per_mwh);
  const double target = 0.5 * (lo_cost + hi_cost);
  const auto result =
      solve_beta_only(instance, state, target, BetaOnlyConfig{}, rng);
  EXPECT_LE(result.energy_cost, target * (1.0 + 1e-9));
  // The oracle should not leave large amounts of budget unspent.
  EXPECT_GE(result.energy_cost, target * 0.95);
  EXPECT_GT(result.multiplier, 0.0);
}

TEST(BetaOnly, InfeasibleTargetFallsToFloor) {
  util::Rng rng(3);
  const Instance instance = test::tiny_instance(4);
  const SlotState state = test::random_state(4, 2, rng);
  const double lo_cost =
      instance.energy_cost(instance.min_frequencies(), state.price_per_mwh);
  const auto result =
      solve_beta_only(instance, state, lo_cost * 0.5, BetaOnlyConfig{}, rng);
  EXPECT_NEAR(result.energy_cost, lo_cost, lo_cost * 0.05);
  EXPECT_GT(result.energy_cost, lo_cost * 0.5);  // target truly infeasible
}

TEST(BetaOnly, LatencyMonotoneInTarget) {
  util::Rng rng(4);
  const Instance instance = test::tiny_instance(6);
  const SlotState state = test::random_state(6, 2, rng);
  const double lo_cost =
      instance.energy_cost(instance.min_frequencies(), state.price_per_mwh);
  const double hi_cost =
      instance.energy_cost(instance.max_frequencies(), state.price_per_mwh);
  double previous_latency = std::numeric_limits<double>::infinity();
  for (double frac : {0.2, 0.5, 0.8, 1.2}) {
    const double target = lo_cost + frac * (hi_cost - lo_cost);
    const auto result =
        solve_beta_only(instance, state, target, BetaOnlyConfig{}, rng);
    EXPECT_LE(result.latency, previous_latency * (1.0 + 1e-6))
        << "frac=" << frac;
    previous_latency = result.latency;
  }
}

TEST(BetaOnly, ReportedNumbersConsistent) {
  util::Rng rng(5);
  const Instance instance = test::tiny_instance(4);
  const SlotState state = test::random_state(4, 2, rng);
  const auto result =
      solve_beta_only(instance, state, 1.0, BetaOnlyConfig{}, rng);
  EXPECT_NEAR(result.latency,
              reduced_latency(instance, state, result.assignment,
                              result.frequencies),
              1e-9 * result.latency);
  EXPECT_NEAR(
      result.energy_cost,
      instance.energy_cost(result.frequencies, state.price_per_mwh),
      1e-12);
}

TEST(BetaOnly, RejectsBadArguments) {
  util::Rng rng(6);
  const Instance instance = test::tiny_instance(2);
  const SlotState state = test::uniform_state(2, 2);
  EXPECT_THROW(
      (void)solve_beta_only(instance, state, 0.0, BetaOnlyConfig{}, rng),
      std::invalid_argument);
  BetaOnlyConfig config;
  config.iterations = 0;
  EXPECT_THROW((void)solve_beta_only(instance, state, 1.0, config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace eotora::core
