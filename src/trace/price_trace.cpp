#include "trace/price_trace.h"

#include <algorithm>

#include "util/check.h"

namespace eotora::trace {

PriceTrace::PriceTrace(const PriceTraceConfig& config, util::Rng rng)
    : trend_(PeriodicTrend::diurnal(config.period, config.off_peak_price,
                                    config.peak_price,
                                    /*peak_position=*/0.75)),
      noise_(NoiseModel::Kind::kGaussian, config.noise_stddev),
      config_(config),
      rng_(rng) {
  EOTORA_REQUIRE(config.off_peak_price > 0.0);
  EOTORA_REQUIRE(config.peak_price >= config.off_peak_price);
  EOTORA_REQUIRE(config.spike_probability >= 0.0 &&
                 config.spike_probability <= 1.0);
  EOTORA_REQUIRE(config.spike_multiplier >= 1.0);
  EOTORA_REQUIRE(config.floor_price > 0.0);
}

double PriceTrace::next() {
  double price = trend_.at(slot_) + noise_.sample(rng_);
  if (config_.spike_probability > 0.0 &&
      rng_.bernoulli(config_.spike_probability)) {
    price *= config_.spike_multiplier;
  }
  ++slot_;
  return std::max(price, config_.floor_price);
}

std::vector<double> PriceTrace::generate(const PriceTraceConfig& config,
                                         std::size_t horizon, util::Rng rng) {
  PriceTrace trace(config, rng);
  std::vector<double> prices;
  prices.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) prices.push_back(trace.next());
  return prices;
}

}  // namespace eotora::trace
