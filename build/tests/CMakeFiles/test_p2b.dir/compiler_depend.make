# Empty compiler generated dependencies file for test_p2b.
# This may be replaced when dependencies are built.
