// iid noise components for the state processes (the e_t terms of §III-A).
#pragma once

#include "util/check.h"
#include "util/rng.h"

namespace eotora::trace {

// Zero-mean iid noise, truncated so that trend + noise stays within sane
// physical bounds (task sizes, prices, ... must remain positive).
class NoiseModel {
 public:
  enum class Kind { kGaussian, kUniform };

  // Gaussian: stddev = `spread`. Uniform: support [-spread, spread].
  NoiseModel(Kind kind, double spread) : kind_(kind), spread_(spread) {
    EOTORA_REQUIRE_MSG(spread >= 0.0, "spread=" << spread);
  }

  // Draws one sample, clamped to [-3*spread, 3*spread] for the Gaussian kind
  // so a single outlier cannot push a state negative.
  [[nodiscard]] double sample(util::Rng& rng) const {
    if (spread_ == 0.0) return 0.0;
    switch (kind_) {
      case Kind::kUniform:
        return rng.uniform(-spread_, spread_);
      case Kind::kGaussian: {
        const double x = rng.normal(0.0, spread_);
        const double bound = 3.0 * spread_;
        return x < -bound ? -bound : (x > bound ? bound : x);
      }
    }
    return 0.0;  // unreachable
  }

  [[nodiscard]] double spread() const { return spread_; }
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
  double spread_;
};

}  // namespace eotora::trace
