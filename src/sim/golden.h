// Golden-trace differential regression layer.
//
// A golden trace is a canonical per-slot digest of one policy driven over
// one small scenario: the discrete decisions (x, y) verbatim, plus the
// frequency vector and headline metrics rounded to 9 significant digits so
// the fixture pins algorithmic behavior (which solver moves were made, how
// the queue evolved) without being brittle to last-ulp arithmetic noise.
// Fixtures are committed under tests/golden/ as "eotora-golden-v1" JSON
// (util::json, insertion-ordered keys → byte-deterministic dumps); a perf
// PR that changes any fixture must say why in CHANGES.md (docs/TESTING.md).
//
// record_golden_trace() re-runs the scenario with an every-slot
// sim::SlotAuditor and throws if the run is not audit-clean — a golden
// fixture must never encode infeasible physics. diff_golden() reports the
// FIRST divergent slot and field, which is what the ctest target and the
// golden_tool CLI print on drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/audit.h"
#include "sim/registry.h"
#include "sim/scenario.h"
#include "util/json.h"

namespace eotora::sim {

// One committed scenario: a name, the scenario knobs, and the horizon.
struct GoldenScenario {
  std::string name;
  ScenarioConfig config;
  std::size_t horizon = 16;
};

// The committed fixture matrix: 3 small scenarios x 4 registry policies
// (dpp-bdma — the paper's EOTORA controller —, dpp-mcba, dpp-ropt,
// beta-only).
[[nodiscard]] const std::vector<GoldenScenario>& golden_scenarios();
[[nodiscard]] const std::vector<std::string>& golden_policies();
// The scenario-diversity fixtures: one tiny world per registered non-paper
// scenario preset (sim/scenario_registry.h), each paired with dpp-bdma
// only — the presets drift-gate the GENERATORS, the 3x4 matrix above
// drift-gates the policies.
[[nodiscard]] const std::vector<GoldenScenario>& golden_preset_scenarios();

// One committed fixture: a scenario plus the policy recorded over it.
struct GoldenCase {
  const GoldenScenario* scenario = nullptr;  // into one of the lists above
  std::string policy;
};
// Every committed fixture, in fixture-file order: the full
// golden_scenarios() x golden_policies() product (12), then
// golden_preset_scenarios() x dpp-bdma (4). golden_tool and the drift
// gates iterate THIS list — new fixtures only need a new entry here.
[[nodiscard]] const std::vector<GoldenCase>& golden_cases();
// The fixed PolicyParams every golden trace is recorded with.
[[nodiscard]] const PolicyParams& golden_policy_params();

// Rounds to `digits` significant decimal digits (shortest round-trip form
// of the rounded value re-parses to the same double).
[[nodiscard]] double round_sig(double value, int digits = 9);

struct GoldenSlot {
  std::size_t slot = 0;
  std::vector<std::size_t> bs_of;
  std::vector<std::size_t> server_of;
  std::vector<double> frequencies;  // rounded
  double latency = 0.0;             // rounded
  double energy_cost = 0.0;         // rounded
  double theta = 0.0;               // rounded
  double queue_after = 0.0;         // rounded
};

struct GoldenTrace {
  std::string scenario;  // GoldenScenario::name
  std::string policy;    // registry name
  std::size_t devices = 0;
  std::size_t horizon = 0;
  std::uint64_t seed = 0;  // the scenario seed
  std::vector<GoldenSlot> slots;

  [[nodiscard]] util::Json to_json() const;
  // Strict: throws std::invalid_argument on schema/type mismatches.
  [[nodiscard]] static GoldenTrace from_json(const util::Json& doc);
};

// First point of divergence between two traces.
struct GoldenDivergence {
  bool identical = true;
  // slot index within the trace; npos for header-level divergence.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t slot = kNoSlot;
  std::string field;     // e.g. "server_of[3]", "latency", "horizon"
  std::string expected;  // rendered expected value
  std::string actual;    // rendered actual value

  [[nodiscard]] std::string describe() const;
};

// Compares slot by slot, field by field, and reports the FIRST divergence.
[[nodiscard]] GoldenDivergence diff_golden(const GoldenTrace& expected,
                                           const GoldenTrace& actual);

// Runs `policy` (a registry name) over the scenario with an every-slot
// audit and digests each slot. Throws std::runtime_error naming the first
// violation if the run is not audit-clean.
[[nodiscard]] GoldenTrace record_golden_trace(const GoldenScenario& scenario,
                                              const std::string& policy);

// "<scenario>.<policy>.json"
[[nodiscard]] std::string golden_fixture_filename(const std::string& scenario,
                                                  const std::string& policy);

// Fixture file IO. load throws std::runtime_error (unreadable path) or
// std::invalid_argument (malformed document).
[[nodiscard]] GoldenTrace load_golden_file(const std::string& path);
void write_golden_file(const std::string& path, const GoldenTrace& trace);

}  // namespace eotora::sim
