// Command-line experiment driver: run any policy on the paper scenario with
// parameters from flags, optionally recording the state trace or replaying a
// previous one.
//
//   $ ./examples/eotora_cli --help
//   $ ./examples/eotora_cli --policy=bdma --v=200 --days=7 --budget=1.1
//   $ ./examples/eotora_cli --policy=greedy --devices=60 --record=run.csv
//   $ ./examples/eotora_cli --policy=mcba --replay=run.csv
//   $ ./examples/eotora_cli --policy=bdma --devices=50 --horizon=100000 --stream
#include <iostream>
#include <memory>

#include "core/counters.h"
#include "eotora/eotora.h"
#include "sim/pipeline/graph.h"
#include "util/args.h"
#include "util/trace.h"

namespace {

void print_usage() {
  std::cout <<
      R"(eotora_cli - run an EOTORA policy on the paper scenario

options (all --key=value):
  --policy   any sim/registry name (dpp-bdma | dpp-mcba | dpp-ropt |
             greedy-budget | fixed-frequency | fixed-max | fixed-min |
             mpc), or the short aliases bdma | mcba | ropt | greedy  [bdma]
  --devices  number of mobile devices                             [100]
  --days     horizon in days (24 slots each)                      [7]
  --horizon  horizon in slots (overrides --days)
  --budget   energy budget in $ per slot                          [1.0]
  --v        DPP penalty weight V                                 [100]
  --q0       initial queue backlog Q(1)                           [0]
  --z        BDMA iterations                                      [5]
  --seed     scenario seed                                        [42]
  --scenario named scenario preset from sim/scenario_registry.h
             (paper | handover | churn | bursty | price-spike): a
             pure ScenarioConfig transform applied BEFORE the other
             flags, so --devices/--budget/... still win          [paper]
  --shards   run the P2-A solve sharded: decompose the WCG into its
             connected components and solve them with up to this many
             workers (results are bit-identical to the global solve for
             every value >= 1); only CGBA/MCBA-backed policies shard
  --districts  metro-scale layout: tile the region with this many
             self-contained districts (must be a perfect square); each
             district gets its own server room, local mid-band stations,
             and a confined share of the devices, so the WCG splits into
             one component per district
  --graph    print the stage/port wiring of this policy's decision
             pipeline (sim/pipeline graph), then exit
  --record   write the generated state trace to this CSV path
  --replay   read states from this CSV instead of generating
  --log      write a per-slot decision log (CSV) to this path
  --stream   pull states one slot at a time instead of materializing
             the horizon: memory stays O(devices x stations) no matter
             how long the run, and only aggregate metrics are kept
             (results are bit-identical to the materialized mode)
  --prefetch with --stream: generate the next state on a background
             thread while the policy decides the current slot
  --audit    re-validate every slot against the P1 constraint set
             (sim/audit.h): "every" (default when the flag is bare),
             "sample" (every 16th slot), or "off"; exits 3 on violations
  --trace-out  record execution trace spans (per-slot phases, solver
             stages) and write Chrome chrome://tracing JSON to this path;
             tracing never changes results or the printed counters
  --kernel-backend  force the arithmetic kernel backend by name (see
             --list-kernels); unknown or unsupported names fail fast
             listing the available ones. Default: the most specialized
             backend this CPU supports (results are bit-identical on
             every backend), or the EOTORA_KERNEL_BACKEND env var
  --fast-math  let the kernel layer reassociate reductions and
             pre-combine scan terms: faster, but results may drift up
             to 1e-9 relative from the bit-exact default path, so the
             golden fixtures only hold with this flag off
  --list-kernels  print every kernel backend this build + CPU supports
             with a one-line description, then exit
  --list-policies  print every registry policy name with a one-line
             description, then exit
  --list-scenarios  print every registered scenario preset with a
             one-line description, then exit
  --help     this text

Deterministic solver counters (best-response rounds, accepted moves, BDMA
iterations, Lemma-1 evaluations, ...) are printed after every run.
)";
}

// Parses the --audit flag value into a config, with check_queue narrowed
// to policies that actually maintain the virtual queue.
eotora::sim::AuditConfig parse_audit_config(const std::string& value,
                                            const std::string& policy_name) {
  eotora::sim::AuditConfig config;
  if (value.empty() || value == "every" || value == "every-slot") {
    config.mode = eotora::sim::AuditMode::kEverySlot;
  } else if (value == "sample" || value == "sampled") {
    config.mode = eotora::sim::AuditMode::kSampled;
  } else if (value == "off") {
    config.mode = eotora::sim::AuditMode::kOff;
  } else {
    throw std::invalid_argument("--audit must be every | sample | off, got '" +
                                value + "'");
  }
  config.check_queue = eotora::sim::policy_tracks_queue(policy_name);
  return config;
}

// Prints the audit digest and the first few violations; returns the
// process exit code (0 clean, 3 violations).
int report_audit(const eotora::sim::AuditReport& report) {
  std::cout << "audit: " << report.summary() << "\n";
  constexpr std::size_t kMaxShown = 5;
  for (std::size_t i = 0; i < report.violations.size() && i < kMaxShown; ++i) {
    std::cout << "  " << report.violations[i].describe() << "\n";
  }
  if (report.violations.size() > kMaxShown) {
    std::cout << "  ... " << (report.total_violations() - kMaxShown)
              << " more\n";
  }
  return report.clean() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eotora;
  try {
    const util::Args args(argc, argv,
                          {"policy", "devices", "days", "horizon", "budget",
                           "v", "q0", "z", "seed", "scenario", "shards",
                           "districts", "graph", "record", "replay", "log",
                           "stream", "prefetch", "audit", "trace-out",
                           "kernel-backend", "fast-math", "list-kernels",
                           "list-policies", "list-scenarios", "help"});
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    if (args.has("list-policies")) {
      for (const auto& name : sim::registered_policies()) {
        std::cout << name << "  " << sim::policy_description(name) << "\n";
      }
      return 0;
    }
    if (args.has("list-scenarios")) {
      for (const auto& name : sim::registered_scenarios()) {
        std::cout << name << "  " << sim::scenario_description(name) << "\n";
      }
      return 0;
    }
    if (args.has("list-kernels")) {
      for (const core::kernels::Backend* backend :
           core::kernels::available_backends()) {
        std::cout << backend->name << "  " << backend->description << "\n";
      }
      return 0;
    }
    // Kernel selection happens before any scenario work: an unknown backend
    // name must fail fast (set_backend throws listing the available ones),
    // and every solver must see the same selection from the first slot on.
    if (args.has("kernel-backend")) {
      core::kernels::set_backend(args.get("kernel-backend", ""));
    }
    if (args.has("fast-math")) {
      core::kernels::set_fast_math(true);
    }

    // The historical short names stay as aliases everywhere a policy name
    // is accepted.
    const auto resolve_policy = [](std::string name) {
      if (name == "bdma") return std::string("dpp-bdma");
      if (name == "mcba") return std::string("dpp-mcba");
      if (name == "ropt") return std::string("dpp-ropt");
      if (name == "greedy") return std::string("greedy-budget");
      return name;
    };

    if (args.has("graph")) {
      const std::string name = resolve_policy(args.get("graph", ""));
      if (name.empty()) {
        throw std::invalid_argument("--graph requires a policy name");
      }
      // A tiny scenario suffices: the wiring depends only on the policy
      // assembly, never on the instance size.
      sim::ScenarioConfig graph_config;
      graph_config.devices = 4;
      sim::Scenario graph_world(graph_config);
      const std::unique_ptr<sim::Policy> assembled =
          sim::make_policy(name, graph_world.instance(), sim::PolicyParams{});
      const auto* graph =
          dynamic_cast<const sim::pipeline::PolicyGraph*>(assembled.get());
      if (graph == nullptr) {
        throw std::invalid_argument("policy '" + name +
                                    "' is not a staged pipeline");
      }
      std::cout << graph->wiring_description();
      return 0;
    }

    sim::ScenarioConfig config;
    // Presets transform the defaults first; explicit flags below still win.
    if (args.has("scenario")) {
      sim::apply_scenario_preset(args.get("scenario", ""), config);
    }
    config.devices = static_cast<std::size_t>(args.get_int("devices", 100));
    config.budget_per_slot = args.get_double("budget", 1.0);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    if (args.has("districts")) {
      const long districts = args.get_int("districts", 0);
      if (districts <= 0) {
        throw std::invalid_argument(
            "--districts must be a positive perfect square, got " +
            args.get("districts", ""));
      }
      config.metro_districts = static_cast<std::size_t>(districts);
    }
    const auto days = static_cast<std::size_t>(args.get_int("days", 7));
    const std::size_t horizon =
        args.has("horizon")
            ? static_cast<std::size_t>(args.get_int("horizon", 0))
            : 24 * days;

    // Reject contradictory flag combinations up front, before any file or
    // scenario work happens, so mistakes fail fast with a clear message.
    const bool stream = args.has("stream");
    if (args.has("prefetch") && !stream) {
      throw std::invalid_argument("--prefetch requires --stream");
    }
    if (args.has("record") && args.has("replay")) {
      throw std::invalid_argument(
          "--record and --replay are mutually exclusive: a replayed run "
          "would just copy the input CSV");
    }
    if (args.has("replay") && (args.has("horizon") || args.has("days"))) {
      throw std::invalid_argument(
          "--horizon/--days do not apply with --replay: the replay file "
          "fixes the number of slots");
    }
    const std::string trace_out = args.get("trace-out", "");
    if (args.has("trace-out") && trace_out.empty()) {
      throw std::invalid_argument("--trace-out requires a file path");
    }
    if (!trace_out.empty()) {
      util::trace::clear();
      util::trace::set_enabled(true);
    }

    // Policies come from the registry; short names resolve above.
    const std::string policy_name = resolve_policy(args.get("policy", "bdma"));
    sim::PolicyParams params;
    params.v = args.get_double("v", 100.0);
    params.initial_queue = args.get_double("q0", 0.0);
    params.bdma_iterations = static_cast<std::size_t>(args.get_int("z", 5));
    if (args.has("shards")) {
      const long shards = args.get_int("shards", 0);
      if (shards <= 0) {
        throw std::invalid_argument(
            "--shards must be a positive worker count, got " +
            args.get("shards", ""));
      }
      if (policy_name == "dpp-ropt" || policy_name == "beta-only") {
        throw std::invalid_argument(
            "--shards needs a policy whose P2-A solve runs CGBA or MCBA; '" +
            policy_name + "' bypasses the shardable solvers");
      }
      params.shard_workers = static_cast<std::size_t>(shards);
    }

    sim::AuditConfig audit;
    audit.mode = sim::AuditMode::kOff;
    if (args.has("audit")) {
      audit = parse_audit_config(args.get("audit", ""), policy_name);
    }
    const bool auditing = audit.mode != sim::AuditMode::kOff;

    // Build the state provider. Streaming mode keeps exactly one Scenario
    // alive (inside the ScenarioSource) and never materializes the horizon;
    // the materialized branch below is the historical behavior.
    std::unique_ptr<sim::Scenario> replay_world;  // instance for --replay
    std::unique_ptr<sim::ScenarioSource> scenario_source;
    std::unique_ptr<sim::ReplaySource> replay_source;
    std::unique_ptr<sim::RecordingSource> recording_source;
    std::unique_ptr<sim::PrefetchSource> prefetch_source;
    sim::StateSource* source = nullptr;
    const core::Instance* instance = nullptr;
    std::vector<core::SlotState> states;  // materialized mode only

    if (stream) {
      if (args.has("replay")) {
        replay_world = std::make_unique<sim::Scenario>(config);
        sim::print_scenario(std::cout, *replay_world);
        replay_source =
            std::make_unique<sim::ReplaySource>(args.get("replay", ""));
        if (replay_source->devices() != config.devices) {
          throw std::invalid_argument(
              "replay file has " + std::to_string(replay_source->devices()) +
              " devices but the scenario has " +
              std::to_string(config.devices) + "; pass matching --devices");
        }
        source = replay_source.get();
        instance = &replay_world->instance();
        std::cout << "streaming replay from " << args.get("replay", "")
                  << "\n";
      } else {
        scenario_source = std::make_unique<sim::ScenarioSource>(config, horizon);
        sim::print_scenario(std::cout, scenario_source->scenario());
        source = scenario_source.get();
        instance = &scenario_source->instance();
      }
      if (args.has("record")) {
        recording_source = std::make_unique<sim::RecordingSource>(
            *source, args.get("record", ""));
        source = recording_source.get();
      }
      if (args.has("prefetch")) {
        prefetch_source = std::make_unique<sim::PrefetchSource>(*source);
        source = prefetch_source.get();
      }
    } else {
      replay_world = std::make_unique<sim::Scenario>(config);
      sim::print_scenario(std::cout, *replay_world);
      instance = &replay_world->instance();
      if (args.has("replay")) {
        states = sim::load_states(args.get("replay", ""));
        std::cout << "replaying " << states.size() << " slots from "
                  << args.get("replay", "") << "\n";
      } else {
        states = replay_world->generate_states(horizon);
      }
      if (args.has("record")) {
        sim::save_states(args.get("record", ""), states);
        std::cout << "recorded " << states.size() << " slots to "
                  << args.get("record", "") << "\n";
      }
    }

    std::unique_ptr<sim::Policy> policy;
    try {
      policy = sim::make_policy(policy_name, *instance, params);
    } catch (const std::invalid_argument& error) {
      std::cerr << error.what() << "\n";
      print_usage();
      return 2;
    }

    sim::SimulationResult result;
    if (args.has("log") && stream) {
      // Manual streaming loop: each slot is logged straight to disk (and
      // audited in-line); only aggregates are kept in memory.
      policy->reset();
      util::Rng rng(1);
      result.policy_name = policy->name();
      result.metrics.set_keep_series(false);
      sim::DecisionLogWriter log(args.get("log", ""));
      sim::SlotAuditor auditor(*instance, audit);
      core::SlotState state;
      core::DppSlotResult slot;
      util::Timer timer;
      while (source->next(state)) {
        {
          // Scope only the decision, matching run_policy: audit-time
          // re-solves must not pollute the counters.
          const core::counters::Scope scope(result.counters);
          slot = policy->step(state, rng);
        }
        result.metrics.record(slot);
        log.record(state, slot);
        if (auditing) auditor.observe(state, slot);
      }
      result.wall_seconds = timer.elapsed_seconds();
      result.stages = policy->stage_stats();
      result.audit = auditor.report();
      log.close();
      std::cout << "wrote per-slot log to " << args.get("log", "") << "\n";
    } else if (args.has("log")) {
      // Manual loop so each slot can be logged (and audited in-line).
      policy->reset();
      util::Rng rng(1);
      result.policy_name = policy->name();
      sim::DecisionLog log;
      sim::SlotAuditor auditor(*instance, audit);
      core::DppSlotResult slot;
      util::Timer timer;
      for (const auto& state : states) {
        {
          const core::counters::Scope scope(result.counters);
          slot = policy->step(state, rng);
        }
        result.metrics.record(slot);
        log.record(state, slot);
        if (auditing) auditor.observe(state, slot);
      }
      result.wall_seconds = timer.elapsed_seconds();
      result.stages = policy->stage_stats();
      result.audit = auditor.report();
      log.save(args.get("log", ""));
      std::cout << "wrote per-slot log to " << args.get("log", "") << "\n";
    } else if (stream) {
      // keep_series=false keeps the run O(1) in the horizon; the printed
      // comparison only needs the aggregates.
      result = auditing
                   ? sim::run_policy(*policy, *instance, *source, audit, 1,
                                     /*keep_series=*/false)
                   : sim::run_policy(*policy, *source, 1,
                                     /*keep_series=*/false);
      if (recording_source != nullptr) {
        std::cout << "recorded " << result.metrics.slots() << " slots to "
                  << args.get("record", "") << "\n";
      }
    } else if (auditing) {
      result = sim::run_policy(*policy, *instance, states, audit);
    } else {
      result = sim::run_policy(*policy, states);
    }
    std::cout << "\n";
    sim::print_comparison(std::cout, {result}, config.budget_per_slot);
    // Deterministic for a fixed scenario + seed, so this line is also a
    // quick reproducibility check across machines.
    std::cout << "counters: " << result.counters.to_json().dump() << "\n";
    // Pipeline policies also break the same totals down per stage.
    for (const auto& stage : result.stages) {
      std::cout << "stage " << stage.name << ": runs=" << stage.runs;
      if (!stage.shards.empty()) {
        std::cout << " shards=" << stage.shards.size();
      }
      std::cout << " counters=" << stage.counters.to_json().dump() << "\n";
    }
    if (prefetch_source != nullptr) {
      const auto stats = prefetch_source->stats();
      std::cout << "prefetch: delivered=" << stats.delivered
                << " max_ready_depth=" << stats.max_ready_depth
                << " consumer_stalls=" << stats.consumer_stalls << "\n";
    }
    if (!trace_out.empty()) {
      util::trace::set_enabled(false);
      util::trace::write_chrome_json(trace_out);
      std::cout << "wrote " << util::trace::event_count()
                << " trace events to " << trace_out << "\n";
    }
    if (auditing) {
      return report_audit(result.audit);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
