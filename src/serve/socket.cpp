#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace eotora::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// Fills a sockaddr_un, rejecting paths that do not fit sun_path.
sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path '" + path +
                             "' is empty or too long (max " +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             " bytes)");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

Fd::~Fd() { close(); }

Fd::Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket(AF_UNIX)");
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // stale files are the norm after a crash, so remove it up front.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    fail_errno("bind('" + path + "')");
  }
  if (::listen(fd.get(), 1) != 0) fail_errno("listen('" + path + "')");
  return fd;
}

Fd accept_client(const Fd& listener) {
  for (;;) {
    const int client = ::accept(listener.get(), nullptr, nullptr);
    if (client >= 0) return Fd(client);
    if (errno == EINTR) continue;
    fail_errno("accept");
  }
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    fail_errno("connect('" + path + "')");
  }
  return fd;
}

void write_all(const Fd& fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd.get(), data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    if (n == 0) throw std::runtime_error("write: peer closed the socket");
    written += static_cast<std::size_t>(n);
  }
}

void send_frame(const Fd& fd, FrameType type,
                const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  write_all(fd, frame.data(), frame.size());
}

bool recv_frame(const Fd& fd, FrameAssembler& assembler, Frame& out) {
  if (assembler.next(out)) return true;
  std::uint8_t buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) {
      if (assembler.buffered() != 0) {
        throw CodecError("peer closed the socket mid-frame (" +
                         std::to_string(assembler.buffered()) +
                         " bytes buffered)");
      }
      return false;  // clean EOF on a frame boundary
    }
    assembler.feed(buffer, static_cast<std::size_t>(n));
    if (assembler.next(out)) return true;
  }
}

}  // namespace eotora::serve
