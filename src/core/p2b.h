// P2-B — optimal clock frequencies for a fixed assignment (paper §V-A).
//
// The objective  V·T_t(x̄, ȳ, Ω, β) + Q·Θ(Ω, p)  separates over servers:
//   min_{ω ∈ [F^L_n, F^U_n]}  V·A_n / (cores_n ω 1e9)
//                             + Q·p·watts_n(ω)·slot_h/1e6
// with A_n = (Σ_{i on n} sqrt(f_i/σ_{i,n}))². Each piece is convex (1/ω plus
// a convex energy model), so a derivative bisection solves it to tolerance —
// this replaces the paper's CVX call.
#pragma once

#include "core/instance.h"
#include "core/types.h"

namespace eotora::core {

struct P2bResult {
  Frequencies frequencies;
  // Full drift-plus-penalty objective f(x, y, Ω) = V·T_t + Q·Θ at the
  // optimal frequencies (includes the frequency-independent communication
  // latency and the -Q·C̄ term).
  double objective = 0.0;
};

// Solves P2-B for the given assignment. Requires V >= 0, Q >= 0.
[[nodiscard]] P2bResult solve_p2b(const Instance& instance,
                                  const SlotState& state,
                                  const Assignment& assignment, double v,
                                  double q, double tolerance = 1e-7);

// f(x, y, Ω) = V·T_t(x, y, Ω, β) + Q·Θ(Ω, p) — the P2 objective (paper §V).
[[nodiscard]] double dpp_objective(const Instance& instance,
                                   const SlotState& state,
                                   const Assignment& assignment,
                                   const Frequencies& frequencies, double v,
                                   double q);

}  // namespace eotora::core
