// Quickstart: build the paper's default MEC scenario, run BDMA-based DPP for
// one simulated week, and print what the controller did.
//
//   $ ./examples/quickstart
#include <iostream>

#include "eotora/eotora.h"

int main() {
  using namespace eotora;

  // 1. The paper's simulation setting (§VI-A): 6 base stations, 2 server
  //    rooms with 8 servers each, 100 mobile devices, NYISO-like prices.
  sim::ScenarioConfig config;
  config.devices = 100;
  config.budget_per_slot = 1.0;  // $ per hourly slot
  config.seed = 7;
  sim::Scenario scenario(config);
  sim::print_scenario(std::cout, scenario);

  // 2. The online controller: Algorithm 1 (DPP) with BDMA(z = 5) inside.
  core::DppConfig dpp;
  dpp.v = 100.0;
  dpp.bdma.iterations = 5;
  sim::DppPolicy policy(scenario.instance(), dpp);

  // 3. One simulated week of hourly slots.
  const auto states = scenario.generate_states(24 * 7);
  const auto result = sim::run_policy(policy, states);

  // 4. Results.
  std::cout << "\nran " << result.metrics.slots() << " slots with "
            << result.policy_name << " (V = " << dpp.v << ")\n"
            << "  time-average latency     : "
            << result.metrics.average_latency() << " s\n"
            << "  time-average energy cost : $"
            << result.metrics.average_energy_cost() << " per slot (budget $"
            << config.budget_per_slot << ")\n"
            << "  final queue backlog      : " << policy.queue() << "\n"
            << "  decision time            : " << result.wall_seconds
            << " s total\n";

  // 5. A peek at the last slot's decision.
  const auto& queue_series = result.metrics.queue_series();
  std::cout << "\nqueue backlog (last 12 slots):";
  for (std::size_t t = queue_series.size() - 12; t < queue_series.size(); ++t) {
    std::cout << ' ' << util::format_double(queue_series[t], 2);
  }
  std::cout << '\n';
  return 0;
}
