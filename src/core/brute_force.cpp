#include "core/brute_force.h"

#include <limits>

#include "util/check.h"

namespace eotora::core {

SolveResult brute_force(const WcgProblem& problem, std::size_t max_profiles) {
  const std::size_t devices = problem.num_devices();
  double space = 1.0;
  for (std::size_t i = 0; i < devices; ++i) {
    space *= static_cast<double>(problem.options(i).size());
  }
  EOTORA_REQUIRE_MSG(space <= static_cast<double>(max_profiles),
                     "search space of " << space << " profiles exceeds cap "
                                        << max_profiles);

  Profile z(devices, 0);
  LoadTracker tracker(problem, z);
  SolveResult best;
  best.profile = z;
  best.cost = tracker.total_cost();
  best.optimal = true;
  best.iterations = 1;

  // Odometer enumeration with incremental load updates.
  while (true) {
    std::size_t level = 0;
    while (level < devices) {
      const std::size_t next = z[level] + 1;
      if (next < problem.options(level).size()) {
        z[level] = next;
        tracker.move(level, next);
        break;
      }
      z[level] = 0;
      tracker.move(level, 0);
      ++level;
    }
    if (level == devices) break;  // odometer wrapped: done
    const double cost = tracker.total_cost();
    ++best.iterations;
    if (cost < best.cost) {
      best.cost = cost;
      best.profile = z;
    }
  }
  best.lower_bound = best.cost;
  return best;
}

}  // namespace eotora::core
