file(REMOVE_RECURSE
  "CMakeFiles/test_math_polyfit.dir/test_math_polyfit.cpp.o"
  "CMakeFiles/test_math_polyfit.dir/test_math_polyfit.cpp.o.d"
  "test_math_polyfit"
  "test_math_polyfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_polyfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
