#include "core/metrics.h"

#include <stdexcept>
#include <string>

#include "util/check.h"

namespace eotora::core {

void MetricsCollector::record(const DppSlotResult& slot) {
  latency_.add(slot.latency);
  cost_.add(slot.energy_cost);
  queue_.add(slot.queue_after);
  theta_.add(slot.theta);
  if (keep_series_) {
    latency_series_.push_back(slot.latency);
    queue_series_.push_back(slot.queue_after);
    cost_series_.push_back(slot.energy_cost);
  }
}

void MetricsCollector::set_keep_series(bool keep) {
  EOTORA_REQUIRE_MSG(slots() == 0,
                     "set_keep_series must be chosen before recording; "
                         << slots() << " slots already recorded");
  keep_series_ = keep;
}

void MetricsCollector::reserve(std::size_t slots) {
  if (!keep_series_) return;
  latency_series_.reserve(slots);
  queue_series_.reserve(slots);
  cost_series_.reserve(slots);
}

double MetricsCollector::latency_percentile(double q) const {
  if (!keep_series_) {
    throw std::logic_error(
        "MetricsCollector::latency_percentile requires the per-slot series, "
        "but set_keep_series(false) disabled them (" +
        std::to_string(slots()) + " slots aggregated)");
  }
  EOTORA_REQUIRE(!latency_series_.empty());
  return util::percentile(latency_series_, q);
}

}  // namespace eotora::core
