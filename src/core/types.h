// Problem-level types shared by all solvers (paper §III).
//
// Unit conventions used throughout the core:
//   task size  f_i   : CPU cycles            (paper: 50-200 megacycles)
//   data length d_i  : bits                  (paper: 3-10 megabits)
//   channel h_{i,k}  : bps/Hz; 0 == link unusable (device not covered)
//   bandwidth W      : Hz
//   frequency w_n    : GHz (server capacity = cores * w * 1e9 cycles/s)
//   price p_t        : $/MWh
//   latency          : seconds (sum over devices, as in Eq. (8)/(11))
//   energy cost      : dollars per slot
#pragma once

#include <cstddef>
#include <vector>

#include "topology/channel_model.h"

namespace eotora::core {

// Everything the controller observes at the start of a slot: β_t.
struct SlotState {
  std::size_t slot = 0;
  std::vector<double> task_cycles;      // f_{i,t}, one per device
  std::vector<double> data_bits;        // d_{i,t}, one per device
  topology::ChannelMatrix channel;      // h_{i,k,t}, device-major
  double price_per_mwh = 50.0;          // p_t
};

// Joint base-station + server selection: x_t and y_t in one struct.
// bs_of[i] = k and server_of[i] = n encode x_{i,k,t} = y_{i,n,t} = 1.
struct Assignment {
  std::vector<std::size_t> bs_of;
  std::vector<std::size_t> server_of;

  [[nodiscard]] std::size_t num_devices() const { return bs_of.size(); }
};

// Clock frequencies Ω_t, one entry per server, in GHz.
using Frequencies = std::vector<double>;

// Lemma-1-style per-device resource shares. phi[i] is device i's share of
// its selected server; psi_access[i] / psi_fronthaul[i] its shares of the
// selected base station's access / fronthaul bandwidth.
struct ResourceAllocation {
  std::vector<double> phi;
  std::vector<double> psi_access;
  std::vector<double> psi_fronthaul;
};

// The full per-slot decision α_t = (x, y, Ψ, Φ, Ω).
struct Decision {
  Assignment assignment;
  Frequencies frequencies;
  ResourceAllocation allocation;
};

// Suitability σ_{i,n} in (0, 1]: sigma[i][n] (device-major).
using SuitabilityMatrix = std::vector<std::vector<double>>;

}  // namespace eotora::core
