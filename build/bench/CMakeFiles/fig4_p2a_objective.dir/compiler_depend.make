# Empty compiler generated dependencies file for fig4_p2a_objective.
# This may be replaced when dependencies are built.
