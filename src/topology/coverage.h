// Monte Carlo coverage analysis of a deployment.
//
// Answers the planning questions a Fig.-1-style topology raises: what
// fraction of the service area is covered at all, how much enjoys
// base-station diversity (>= 2 covering cells, i.e. a real selection
// decision), and how many servers a point can reach through its covering
// stations' fronthaul.
#pragma once

#include "topology/topology.h"
#include "util/rng.h"

namespace eotora::topology {

struct CoverageReport {
  std::size_t samples = 0;
  double covered_fraction = 0.0;     // >= 1 covering base station
  double diversity_fraction = 0.0;   // >= 2 covering base stations
  double mean_covering_stations = 0.0;
  double mean_reachable_servers = 0.0;  // union over covering stations
  double min_reachable_servers = 0.0;   // worst covered sample point
};

// Samples `samples` uniform points in the region. Requires samples >= 1.
[[nodiscard]] CoverageReport analyze_coverage(const Topology& topology,
                                              std::size_t samples,
                                              util::Rng& rng);

}  // namespace eotora::topology
