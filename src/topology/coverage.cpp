#include "topology/coverage.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.h"

namespace eotora::topology {

CoverageReport analyze_coverage(const Topology& topology, std::size_t samples,
                                util::Rng& rng) {
  EOTORA_REQUIRE(samples >= 1);
  CoverageReport report;
  report.samples = samples;
  std::size_t covered = 0;
  std::size_t diverse = 0;
  double station_sum = 0.0;
  double server_sum = 0.0;
  double worst_servers = std::numeric_limits<double>::infinity();
  std::vector<bool> reachable(topology.num_servers(), false);
  for (std::size_t s = 0; s < samples; ++s) {
    const Point point{rng.uniform(0.0, topology.region().width),
                      rng.uniform(0.0, topology.region().height)};
    const auto covering = topology.covering_base_stations(point);
    if (covering.empty()) continue;
    ++covered;
    if (covering.size() >= 2) ++diverse;
    station_sum += static_cast<double>(covering.size());
    std::fill(reachable.begin(), reachable.end(), false);
    for (BaseStationId k : covering) {
      for (ServerId n : topology.reachable_servers(k)) {
        reachable[n.value] = true;
      }
    }
    const double servers = static_cast<double>(
        std::count(reachable.begin(), reachable.end(), true));
    server_sum += servers;
    worst_servers = std::min(worst_servers, servers);
  }
  const double n = static_cast<double>(samples);
  report.covered_fraction = static_cast<double>(covered) / n;
  report.diversity_fraction = static_cast<double>(diverse) / n;
  if (covered > 0) {
    report.mean_covering_stations =
        station_sum / static_cast<double>(covered);
    report.mean_reachable_servers = server_sum / static_cast<double>(covered);
    report.min_reachable_servers = worst_servers;
  }
  return report;
}

}  // namespace eotora::topology
