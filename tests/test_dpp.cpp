#include "core/dpp.h"

#include <gtest/gtest.h>

#include "core/latency.h"
#include "core/metrics.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace eotora::core {
namespace {

SlotState priced_state(std::size_t devices, double price, util::Rng& rng) {
  SlotState state = test::random_state(devices, 2, rng);
  state.price_per_mwh = price;
  return state;
}

TEST(Dpp, QueueFollowsEquation21) {
  util::Rng rng(1);
  const Instance instance = test::tiny_instance(4, /*budget=*/1.0);
  DppConfig config;
  config.v = 50.0;
  DppController controller(instance, config);
  double expected_queue = 0.0;
  for (int t = 0; t < 20; ++t) {
    const SlotState state = priced_state(4, rng.uniform(20.0, 90.0), rng);
    const DppSlotResult result = controller.step(state, rng);
    EXPECT_DOUBLE_EQ(result.queue_before, expected_queue);
    expected_queue = std::max(expected_queue + result.theta, 0.0);
    EXPECT_DOUBLE_EQ(result.queue_after, expected_queue);
    EXPECT_DOUBLE_EQ(controller.queue(), expected_queue);
  }
}

TEST(Dpp, SlotResultInternallyConsistent) {
  util::Rng rng(2);
  const Instance instance = test::tiny_instance(5, /*budget=*/2.0);
  DppController controller(instance, DppConfig{});
  const SlotState state = priced_state(5, 60.0, rng);
  const DppSlotResult result = controller.step(state, rng);
  EXPECT_NEAR(result.energy_cost,
              instance.energy_cost(result.decision.frequencies,
                                   state.price_per_mwh),
              1e-12);
  EXPECT_NEAR(result.theta, result.energy_cost - 2.0, 1e-12);
  // Lemma-1 allocation attached and feasible.
  EXPECT_TRUE(allocation_feasible(instance, result.decision.assignment,
                                  result.decision.allocation));
  // Reported latency equals the explicit evaluation at the allocation.
  EXPECT_NEAR(result.latency,
              latency_under_allocation(instance, state,
                                       result.decision.assignment,
                                       result.decision.frequencies,
                                       result.decision.allocation),
              1e-9 * result.latency);
}

TEST(Dpp, HighPriceShrinksFrequencies) {
  util::Rng rng(3);
  const Instance instance = test::tiny_instance(6, /*budget=*/0.5);
  // V and Q(1) tuned so the cheap-price slot sits at/near full frequency
  // while the expensive slot is pushed down by the energy term.
  DppConfig config;
  config.v = 2000.0;
  config.initial_queue = 100.0;
  DppController cheap_controller(instance, config);
  DppController pricey_controller(instance, config);
  util::Rng rng_a(10);
  util::Rng rng_b(10);
  SlotState state = test::random_state(6, 2, rng);
  state.price_per_mwh = 15.0;
  const auto cheap = cheap_controller.step(state, rng_a);
  state.price_per_mwh = 150.0;
  const auto pricey = pricey_controller.step(state, rng_b);
  double cheap_sum = 0.0;
  double pricey_sum = 0.0;
  for (std::size_t n = 0; n < instance.num_servers(); ++n) {
    cheap_sum += cheap.decision.frequencies[n];
    pricey_sum += pricey.decision.frequencies[n];
  }
  EXPECT_LT(pricey_sum, cheap_sum);
}

TEST(Dpp, LongRunMeetsBudgetWhenFeasible) {
  util::Rng rng(4);
  // Budget chosen well above the minimum-possible cost so Assumption 1
  // (Slater) holds and Theorem 4's constraint guarantee applies.
  const Instance instance = test::tiny_instance(4, /*budget=*/10.0);
  const double min_possible =
      instance.energy_cost(instance.min_frequencies(), 90.0);
  ASSERT_LT(min_possible, 10.0);
  DppConfig config;
  config.v = 50.0;
  DppController controller(instance, config);
  MetricsCollector metrics;
  for (int t = 0; t < 600; ++t) {
    const double price = 40.0 + 30.0 * ((t % 24) >= 12 ? 1.0 : -1.0) +
                         rng.uniform(-5.0, 5.0);
    metrics.record(controller.step(priced_state(4, price, rng), rng));
  }
  EXPECT_LE(metrics.average_energy_cost(), 10.0 * 1.02);
  // The queue stays bounded (stability).
  EXPECT_LT(controller.queue(), 1000.0);
}

TEST(Dpp, LargerVGivesLowerLatencyAndBiggerQueue) {
  const Instance instance = test::tiny_instance(6, /*budget=*/1.0);
  auto run = [&](double v) {
    DppConfig config;
    config.v = v;
    DppController controller(instance, config);
    util::Rng rng(99);  // identical streams across v
    MetricsCollector metrics;
    for (int t = 0; t < 300; ++t) {
      const double price =
          50.0 + 40.0 * std::sin(2.0 * 3.14159 * (t % 24) / 24.0);
      metrics.record(controller.step(priced_state(6, price, rng), rng));
    }
    return metrics;
  };
  const auto low_v = run(5.0);
  const auto high_v = run(500.0);
  EXPECT_LE(high_v.average_latency(), low_v.average_latency() * 1.001);
  EXPECT_GE(high_v.average_queue(), low_v.average_queue());
}

TEST(Dpp, ResetClearsQueue) {
  util::Rng rng(5);
  const Instance instance = test::tiny_instance(3, /*budget=*/0.1);
  DppController controller(instance, DppConfig{});
  for (int t = 0; t < 5; ++t) {
    (void)controller.step(priced_state(3, 80.0, rng), rng);
  }
  EXPECT_GT(controller.queue(), 0.0);
  controller.reset();
  EXPECT_DOUBLE_EQ(controller.queue(), 0.0);
}

TEST(Dpp, RejectsBadConfig) {
  const Instance instance = test::tiny_instance(2);
  DppConfig config;
  config.v = 0.0;
  EXPECT_THROW(DppController(instance, config), std::invalid_argument);
  config = {};
  config.initial_queue = -1.0;
  EXPECT_THROW(DppController(instance, config), std::invalid_argument);
}

TEST(Metrics, AggregatesSeries) {
  MetricsCollector metrics;
  DppSlotResult slot;
  slot.latency = 2.0;
  slot.energy_cost = 1.0;
  slot.queue_after = 3.0;
  slot.theta = 0.5;
  metrics.record(slot);
  slot.latency = 4.0;
  slot.energy_cost = 3.0;
  slot.queue_after = 5.0;
  metrics.record(slot);
  EXPECT_EQ(metrics.slots(), 2u);
  EXPECT_DOUBLE_EQ(metrics.average_latency(), 3.0);
  EXPECT_DOUBLE_EQ(metrics.average_energy_cost(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.average_queue(), 4.0);
  EXPECT_DOUBLE_EQ(metrics.max_queue(), 5.0);
  ASSERT_EQ(metrics.latency_series().size(), 2u);
  EXPECT_DOUBLE_EQ(metrics.latency_series()[1], 4.0);
  EXPECT_DOUBLE_EQ(metrics.max_latency(), 4.0);
  EXPECT_DOUBLE_EQ(metrics.latency_percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(metrics.latency_percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(metrics.latency_percentile(50.0), 3.0);
}

TEST(Metrics, PercentileRejectsEmpty) {
  MetricsCollector metrics;
  EXPECT_THROW((void)metrics.latency_percentile(50.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace eotora::core
