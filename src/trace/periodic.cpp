#include "trace/periodic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace eotora::trace {

PeriodicTrend::PeriodicTrend(std::vector<double> one_period)
    : values_(std::move(one_period)) {
  EOTORA_REQUIRE(!values_.empty());
}

double PeriodicTrend::at(std::size_t t) const {
  return values_[t % values_.size()];
}

double PeriodicTrend::min() const {
  return *std::min_element(values_.begin(), values_.end());
}

double PeriodicTrend::max() const {
  return *std::max_element(values_.begin(), values_.end());
}

double PeriodicTrend::mean() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

PeriodicTrend PeriodicTrend::scaled(double factor) const {
  std::vector<double> out = values_;
  for (double& v : out) v *= factor;
  return PeriodicTrend(std::move(out));
}

PeriodicTrend PeriodicTrend::shifted(double offset) const {
  std::vector<double> out = values_;
  for (double& v : out) v += offset;
  return PeriodicTrend(std::move(out));
}

PeriodicTrend PeriodicTrend::diurnal(std::size_t period, double low,
                                     double high, double peak_position) {
  EOTORA_REQUIRE(period >= 2);
  EOTORA_REQUIRE_MSG(low <= high, "low=" << low << " high=" << high);
  EOTORA_REQUIRE(peak_position >= 0.0 && peak_position <= 1.0);
  std::vector<double> values(period, 0.0);
  const double amplitude = 0.5 * (high - low);
  const double midpoint = 0.5 * (high + low);
  for (std::size_t t = 0; t < period; ++t) {
    const double phase = 2.0 * std::numbers::pi *
                         (static_cast<double>(t) / static_cast<double>(period) -
                          peak_position);
    // cos(phase) == 1 exactly at the peak position.
    values[t] = midpoint + amplitude * std::cos(phase);
  }
  return PeriodicTrend(std::move(values));
}

PeriodicTrend PeriodicTrend::constant(double value) {
  return PeriodicTrend({value});
}

}  // namespace eotora::trace
