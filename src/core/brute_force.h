// Exhaustive search over all strategy profiles. Exponential — usable only on
// tiny instances; serves as the ground-truth oracle for solver tests.
#pragma once

#include "core/solve_result.h"
#include "core/wcg.h"

namespace eotora::core {

// Enumerates every profile. Throws std::invalid_argument when the search
// space exceeds `max_profiles` (guards against accidental blow-ups in tests).
[[nodiscard]] SolveResult brute_force(const WcgProblem& problem,
                                      std::size_t max_profiles = 50'000'000);

}  // namespace eotora::core
