# Empty dependencies file for eotora_energy.
# This may be replaced when dependencies are built.
