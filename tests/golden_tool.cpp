// Golden-trace fixture tool: record, check, and diff the committed
// regression fixtures under tests/golden/.
//
//   golden_tool check  [dir]          re-derive every trace, diff vs disk
//   golden_tool record [dir]          (re)write every fixture
//   golden_tool diff   <a.json> <b.json>
//
// `dir` defaults to EOTORA_GOLDEN_DIR (stamped at build time to the
// source-tree tests/golden/). `check` prints the FIRST divergent slot and
// field for every drifted fixture and exits non-zero — this is the CI
// drift gate; scripts/regen_golden.sh wraps record+check.
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/kernels/kernels.h"
#include "sim/golden.h"

#ifndef EOTORA_GOLDEN_DIR
#define EOTORA_GOLDEN_DIR "tests/golden"
#endif

namespace {

using eotora::sim::GoldenCase;
using eotora::sim::GoldenDivergence;
using eotora::sim::GoldenScenario;
using eotora::sim::GoldenTrace;

int usage() {
  std::cerr << "usage: golden_tool check [--fast-math] [dir]\n"
               "       golden_tool record [dir]\n"
               "       golden_tool diff <expected.json> <actual.json>\n"
               "default dir: " EOTORA_GOLDEN_DIR "\n"
               "--fast-math runs the solvers with the reassociating kernel\n"
               "mode (check is then expected to report drift); record\n"
               "refuses it — fixtures pin the bit-exact default path.\n";
  return 2;
}

std::string fixture_path(const std::string& dir, const GoldenScenario& gs,
                         const std::string& policy) {
  return dir + "/" + eotora::sim::golden_fixture_filename(gs.name, policy);
}

int run_record(const std::string& dir) {
  for (const GoldenCase& gc : eotora::sim::golden_cases()) {
    const GoldenTrace trace =
        eotora::sim::record_golden_trace(*gc.scenario, gc.policy);
    const std::string path = fixture_path(dir, *gc.scenario, gc.policy);
    eotora::sim::write_golden_file(path, trace);
    std::cout << "wrote " << path << " (" << trace.slots.size()
              << " slots)\n";
  }
  return 0;
}

int run_check(const std::string& dir) {
  std::size_t checked = 0;
  std::size_t drifted = 0;
  for (const GoldenCase& gc : eotora::sim::golden_cases()) {
    const std::string path = fixture_path(dir, *gc.scenario, gc.policy);
    ++checked;
    GoldenTrace expected;
    try {
      expected = eotora::sim::load_golden_file(path);
    } catch (const std::exception& error) {
      std::cerr << "FAIL " << path << ": " << error.what() << "\n";
      ++drifted;
      continue;
    }
    const GoldenTrace actual =
        eotora::sim::record_golden_trace(*gc.scenario, gc.policy);
    const GoldenDivergence div = eotora::sim::diff_golden(expected, actual);
    if (div.identical) {
      std::cout << "ok   " << path << "\n";
    } else {
      std::cerr << "FAIL " << path << ": " << div.describe() << "\n";
      ++drifted;
    }
  }
  if (drifted > 0) {
    std::cerr << drifted << "/" << checked
              << " fixtures drifted. If the change is intended, regenerate "
                 "with scripts/regen_golden.sh and explain it in "
                 "CHANGES.md.\n";
    return 1;
  }
  std::cout << "all " << checked << " golden fixtures match\n";
  return 0;
}

int run_diff(const std::string& left, const std::string& right) {
  const GoldenTrace expected = eotora::sim::load_golden_file(left);
  const GoldenTrace actual = eotora::sim::load_golden_file(right);
  const GoldenDivergence div = eotora::sim::diff_golden(expected, actual);
  std::cout << div.describe() << "\n";
  return div.identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool fast_math = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--fast-math") {
      fast_math = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  try {
    if (args.empty()) return usage();
    const std::string& command = args[0];
    if (fast_math) {
      if (command == "record") {
        // The committed fixtures define the bit-exact contract every kernel
        // backend must reproduce; a fast-math recording would bake the
        // reassociated rounding into them and silently relax the gate.
        std::cerr << "error: --fast-math cannot be combined with 'record': "
                     "golden fixtures pin the bit-exact default kernel "
                     "path\n";
        return 2;
      }
      eotora::core::kernels::set_fast_math(true);
    }
    if (command == "record" && args.size() <= 2) {
      return run_record(args.size() == 2 ? args[1] : EOTORA_GOLDEN_DIR);
    }
    if (command == "check" && args.size() <= 2) {
      return run_check(args.size() == 2 ? args[1] : EOTORA_GOLDEN_DIR);
    }
    if (command == "diff" && args.size() == 3) {
      return run_diff(args[1], args[2]);
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}
