#include "sim/scenario.h"

#include <cmath>
#include <string>

#include "energy/fit.h"
#include "topology/builder.h"
#include "util/check.h"

namespace eotora::sim {

namespace {

// The metro layout (ScenarioConfig::metro_districts): a square grid of
// self-contained districts. Also fills `device_boxes` with each device's
// waypoint confinement box so the caller can install it on the mobility
// process. All geometric constants are fractions of the (square) tile side:
// station jitter ±0.05, coverage 0.57, device inner box [0.15, 0.85] — see
// the coverage/exclusion margins derived in scenario.h.
std::shared_ptr<topology::Topology> build_metro_topology(
    const ScenarioConfig& config, util::Rng& rng,
    std::vector<topology::BoundingBox>& device_boxes) {
  EOTORA_REQUIRE(config.stations_per_district >= 1);
  EOTORA_REQUIRE(config.servers_per_cluster >= 1);
  EOTORA_REQUIRE(config.devices >= 1);
  const std::size_t districts = config.metro_districts;
  const std::size_t grid = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(districts))));
  EOTORA_REQUIRE_MSG(grid * grid == districts,
                     "metro_districts=" << districts
                                        << " must be a perfect square");

  topology::TopologyBuilder builder;
  const double side = config.region_m;
  builder.set_region(topology::Region{side, side});
  const double tile = side / static_cast<double>(grid);

  const energy::QuadraticEnergy reference = energy::reference_cpu_fit();
  std::size_t server_index = 0;
  std::vector<topology::ClusterId> rooms;
  rooms.reserve(districts);
  for (std::size_t d = 0; d < districts; ++d) {
    const double origin_x = static_cast<double>(d % grid) * tile;
    const double origin_y = static_cast<double>(d / grid) * tile;
    const topology::Point center{origin_x + 0.5 * tile, origin_y + 0.5 * tile};
    rooms.push_back(
        builder.add_cluster("metro-room-" + std::to_string(d), center));
    for (std::size_t j = 0; j < config.servers_per_cluster; ++j) {
      const int cores = (server_index % 2 == 0) ? 64 : 128;
      auto model = std::make_shared<energy::QuadraticEnergy>(
          energy::perturbed_model(reference, rng));
      builder.add_server("server-" + std::to_string(server_index), rooms[d],
                         cores, 1.8, 3.6, std::move(model));
      ++server_index;
    }
    for (std::size_t b = 0; b < config.stations_per_district; ++b) {
      const topology::Point position{
          center.x + rng.uniform(-0.05, 0.05) * tile,
          center.y + rng.uniform(-0.05, 0.05) * tile};
      builder.add_base_station(
          "metro-bs-" + std::to_string(d) + "-" + std::to_string(b), position,
          topology::Band::kMid, /*coverage_radius_m=*/0.57 * tile,
          rng.uniform(50e6, 100e6), rng.uniform(0.5e9, 1e9),
          /*fronthaul_spectral_efficiency=*/10.0, {rooms[d]});
    }
  }

  device_boxes.clear();
  device_boxes.reserve(config.devices);
  for (std::size_t i = 0; i < config.devices; ++i) {
    const std::size_t d = i % districts;
    const double origin_x = static_cast<double>(d % grid) * tile;
    const double origin_y = static_cast<double>(d / grid) * tile;
    const topology::BoundingBox box{origin_x + 0.15 * tile,
                                    origin_y + 0.15 * tile,
                                    origin_x + 0.85 * tile,
                                    origin_y + 0.85 * tile};
    device_boxes.push_back(box);
    builder.add_device("device-" + std::to_string(i),
                       topology::Point{rng.uniform(box.min_x, box.max_x),
                                       rng.uniform(box.min_y, box.max_y)},
                       /*speed_mps=*/rng.uniform(0.5, 2.5));
  }

  return std::make_shared<topology::Topology>(builder.build());
}

std::shared_ptr<topology::Topology> build_topology(
    const ScenarioConfig& config, util::Rng& rng) {
  EOTORA_REQUIRE(config.low_band_stations >= 1);
  EOTORA_REQUIRE(config.clusters >= 1);
  EOTORA_REQUIRE(config.servers_per_cluster >= 1);
  EOTORA_REQUIRE(config.devices >= 1);

  topology::TopologyBuilder builder;
  const double side = config.region_m;
  builder.set_region(topology::Region{side, side});

  // Server rooms spread along the diagonal of the region.
  std::vector<topology::ClusterId> clusters;
  for (std::size_t m = 0; m < config.clusters; ++m) {
    const double frac = (static_cast<double>(m) + 1.0) /
                        (static_cast<double>(config.clusters) + 1.0);
    clusters.push_back(builder.add_cluster(
        "room-" + std::to_string(m), topology::Point{frac * side, frac * side}));
  }

  // Heterogeneous servers: alternating 64 / 128 cores ("half of the sixteen
  // servers have 64 cores, and others have 128"), per-server perturbed
  // quadratic energy models.
  const energy::QuadraticEnergy reference = energy::reference_cpu_fit();
  std::size_t server_index = 0;
  for (std::size_t m = 0; m < config.clusters; ++m) {
    for (std::size_t j = 0; j < config.servers_per_cluster; ++j) {
      const int cores = (server_index % 2 == 0) ? 64 : 128;
      auto model = std::make_shared<energy::QuadraticEnergy>(
          energy::perturbed_model(reference, rng));
      builder.add_server("server-" + std::to_string(server_index),
                         clusters[m], cores, 1.8, 3.6, std::move(model));
      ++server_index;
    }
  }

  // Low-band stations: whole-region coverage, wireless fronthaul reaching
  // every room.
  std::vector<topology::ClusterId> all_clusters = clusters;
  const double full_radius = side * std::sqrt(2.0);  // covers every corner
  for (std::size_t b = 0; b < config.low_band_stations; ++b) {
    const double frac = (static_cast<double>(b) + 1.0) /
                        (static_cast<double>(config.low_band_stations) + 1.0);
    builder.add_base_station(
        "low-band-" + std::to_string(b),
        topology::Point{frac * side, (1.0 - frac) * side}, topology::Band::kLow,
        full_radius, rng.uniform(50e6, 100e6), rng.uniform(0.5e9, 1e9),
        /*fronthaul_spectral_efficiency=*/10.0, all_clusters);
  }

  // Mid-band stations: ~hundred-meter-class cells on a jittered grid, wired
  // fronthaul to one random room. The coverage scale multiplies a DRAWN
  // value, so scaled and unscaled configs consume identical rng streams.
  for (std::size_t b = 0; b < config.mid_band_stations; ++b) {
    const topology::Point position{rng.uniform(0.15 * side, 0.85 * side),
                                   rng.uniform(0.15 * side, 0.85 * side)};
    const topology::ClusterId room = clusters[rng.index(clusters.size())];
    builder.add_base_station("mid-band-" + std::to_string(b), position,
                             topology::Band::kMid,
                             /*coverage_radius_m=*/rng.uniform(0.25, 0.45) *
                                 side * config.mid_band_coverage_scale,
                             rng.uniform(50e6, 100e6), rng.uniform(0.5e9, 1e9),
                             /*fronthaul_spectral_efficiency=*/10.0, {room});
  }

  for (std::size_t i = 0; i < config.devices; ++i) {
    builder.add_device("device-" + std::to_string(i),
                       topology::Point{rng.uniform(0.0, side),
                                       rng.uniform(0.0, side)},
                       /*speed_mps=*/rng.uniform(0.5, 2.5));
  }

  return std::make_shared<topology::Topology>(builder.build());
}

}  // namespace

Scenario::Scenario(const ScenarioConfig& config) : config_(config) {
  EOTORA_REQUIRE(config.mobility_slot_seconds > 0.0);
  EOTORA_REQUIRE(config.mid_band_coverage_scale > 0.0);
  EOTORA_REQUIRE(config.churn.leave_probability >= 0.0 &&
                 config.churn.leave_probability <= 1.0);
  EOTORA_REQUIRE(config.churn.join_probability >= 0.0 &&
                 config.churn.join_probability <= 1.0);
  EOTORA_REQUIRE(config.churn.away_workload_fraction > 0.0 &&
                 config.churn.away_workload_fraction <= 1.0);
  EOTORA_REQUIRE(config.bursts.probability >= 0.0 &&
                 config.bursts.probability <= 1.0);
  EOTORA_REQUIRE(config.bursts.multiplier >= 1.0);

  util::Rng rng(config.seed);
  util::Rng topo_rng = rng.fork();
  util::Rng sigma_rng = rng.fork();
  util::Rng task_rng = rng.fork();
  util::Rng data_rng = rng.fork();
  util::Rng price_rng = rng.fork();
  util::Rng channel_rng = rng.fork();
  util::Rng mobility_rng = rng.fork();
  // New forks stay APPENDED to this list: inserting one earlier would shift
  // every stream after it and invalidate all golden fixtures.
  churn_rng_ = rng.fork();
  burst_rng_ = rng.fork();
  active_.assign(config.devices, 1);

  std::vector<topology::BoundingBox> device_boxes;
  if (config.metro_districts > 0) {
    EOTORA_REQUIRE_MSG(
        config.mobility == ScenarioConfig::Mobility::kRandomWaypoint,
        "metro scenarios require random-waypoint mobility (waypoints are "
        "confined to district boxes; Gauss-Markov walks would leave coverage)");
    topology_ = build_metro_topology(config, topo_rng, device_boxes);
  } else {
    topology_ = build_topology(config, topo_rng);
  }
  instance_ = std::make_unique<core::Instance>(
      topology_,
      core::Instance::random_sigma(config.devices, topology_->num_servers(),
                                   sigma_rng),
      config.budget_per_slot, config.slot_hours);

  trace::WorkloadTraceConfig task_config;
  task_config.period = config.period;
  task_config.devices = config.devices;
  task_config.low = 50e6;    // 50 megacycles
  task_config.high = 200e6;  // 200 megacycles
  task_config.trend_weight = config.workload_trend_weight;
  task_trace_ = std::make_unique<trace::WorkloadTrace>(task_config, task_rng);

  trace::WorkloadTraceConfig data_config;
  data_config.period = config.period;
  data_config.devices = config.devices;
  data_config.low = 3e6;    // 3 megabits
  data_config.high = 10e6;  // 10 megabits
  data_config.trend_weight = config.workload_trend_weight;
  data_trace_ = std::make_unique<trace::WorkloadTrace>(data_config, data_rng);

  trace::PriceTraceConfig price_config = config.price;
  price_config.period = config.period;
  price_trace_ = std::make_unique<trace::PriceTrace>(price_config, price_rng);

  channel_ = std::make_unique<topology::ChannelModel>(
      config.channel, *topology_, channel_rng);
  // Devices move a bounded distance per slot (a few hundred meters at
  // pedestrian speed) so coverage changes gradually instead of resampling
  // uniformly every slot.
  if (config.mobility == ScenarioConfig::Mobility::kRandomWaypoint) {
    waypoint_mobility_ = std::make_unique<topology::RandomWaypointMobility>(
        topology::MobilityConfig{
            /*slot_duration_s=*/config.mobility_slot_seconds,
            /*pause_probability=*/0.1},
        config.devices, mobility_rng);
    if (!device_boxes.empty()) {
      waypoint_mobility_->set_bounding_boxes(std::move(device_boxes));
    }
  } else {
    topology::GaussMarkovMobility::Config gm_config;
    gm_config.slot_duration_s = config.mobility_slot_seconds;
    gauss_markov_mobility_ = std::make_unique<topology::GaussMarkovMobility>(
        gm_config, config.devices, mobility_rng);
  }
}

core::SlotState Scenario::next_state() {
  core::SlotState state;
  next_state(state);
  return state;
}

void Scenario::next_state(core::SlotState& out) {
  if (waypoint_mobility_ != nullptr) {
    waypoint_mobility_->step(*topology_);
  } else {
    gauss_markov_mobility_->step(*topology_);
  }
  out.slot = slot_++;
  task_trace_->next_into(out.task_cycles);
  data_trace_->next_into(out.data_bits);
  channel_->step_into(*topology_, out.channel);
  out.price_per_mwh = price_trace_->next();

  // Scenario-diversity transforms, applied on top of the drawn state.
  // Disabled features draw NOTHING, so the state sequence of a stock config
  // is bit-identical to pre-diversity builds.
  if (config_.bursts.enabled) {
    if (burst_rng_.bernoulli(config_.bursts.probability)) {
      for (double& f : out.task_cycles) f *= config_.bursts.multiplier;
      for (double& d : out.data_bits) d *= config_.bursts.multiplier;
    }
  }
  if (config_.churn.enabled) {
    // One draw per device per slot regardless of its current side of the
    // chain, so the stream position never depends on the trajectory.
    for (std::size_t i = 0; i < config_.devices; ++i) {
      const bool flip = churn_rng_.bernoulli(
          active_[i] != 0 ? config_.churn.leave_probability
                          : config_.churn.join_probability);
      if (flip) active_[i] = active_[i] != 0 ? 0 : 1;
      if (active_[i] == 0) {
        out.task_cycles[i] *= config_.churn.away_workload_fraction;
        out.data_bits[i] *= config_.churn.away_workload_fraction;
      }
    }
  }
}

std::vector<core::SlotState> Scenario::generate_states(std::size_t horizon) {
  std::vector<core::SlotState> states;
  states.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) states.push_back(next_state());
  return states;
}

}  // namespace eotora::sim
