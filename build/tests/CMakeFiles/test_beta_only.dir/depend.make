# Empty dependencies file for test_beta_only.
# This may be replaced when dependencies are built.
