#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# paper figure and every ablation, and collect the outputs.
#
# Human-readable tables land in results/<bench>.txt; the runner-based
# benches additionally emit machine-readable JSON artifacts (schema
# eotora-sweep-v1, see docs/ARCHITECTURE.md "Runner & artifacts") under
# bench/out/ — those are the files perf-tracking diffs across commits.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ninja > /dev/null; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

# Benches ported onto sim::run_sweep: they take --out and write a JSON
# artifact alongside the printed table.
# des_validation is not runner-based but takes the same --out flag
# (BENCH_des.json at the repo root is its committed baseline snapshot).
# serve_bench is not runner-based either but takes the same --out flag
# (BENCH_serve.json at the repo root is its committed baseline snapshot).
runner_benches="fig8_v_sweep fig9_budget_sweep scaling ablation_seeds des_validation serve_bench"

mkdir -p results bench/out
for bench in build/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  case " $runner_benches " in
    *" $name "*)
      "$bench" --out="bench/out/$name.json" | tee "results/$name.txt"
      ;;
    *)
      if [ "$name" = micro_kernels ]; then
        # google-benchmark suite: keep the JSON artifact next to the
        # runner-based ones. BENCH_kernels.json at the repo root is the
        # committed baseline snapshot of this file.
        "$bench" --benchmark_out="bench/out/$name.json" \
          --benchmark_out_format=json | tee "results/$name.txt"
      else
        "$bench" | tee "results/$name.txt"
      fi
      ;;
  esac
done

echo "== compare_policies (example) =="
build/examples/compare_policies --out=bench/out/compare_policies.json \
  | tee results/compare_policies.txt

echo "tables written to results/, JSON artifacts to bench/out/"
