#include "util/strings.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace eotora::util {

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : text) {
    if (ch == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

double parse_double(const std::string& text) {
  const std::string trimmed = trim(text);
  if (trimmed.empty()) {
    throw std::invalid_argument("parse_double: empty field");
  }
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end == trimmed.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_double: not a number: '" + text + "'");
  }
  return value;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace eotora::util
