#include "math/polyfit.h"

#include <gtest/gtest.h>

#include "math/linsolve.h"
#include "math/numderiv.h"
#include "util/rng.h"

namespace eotora::math {
namespace {

TEST(Matrix, AccessAndBounds) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(Matrix(0, 1), std::invalid_argument);
}

TEST(SolveLinear, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveLinear, RejectsShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(Polynomial, EvaluationAndDerivative) {
  // p(x) = 1 + 2x + 3x^2
  const Polynomial p{{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p.derivative(2.0), 14.0);
  EXPECT_EQ(p.degree(), 2);
  EXPECT_NEAR(p.derivative(1.3),
              numeric_derivative([&](double x) { return p(x); }, 1.3), 1e-6);
}

TEST(Polyfit, ExactOnPolynomialData) {
  const std::vector<double> xs = {-2.0, -1.0, 0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(4.0 - 3.0 * x + 0.5 * x * x);
  const Polynomial p = polyfit(xs, ys, 2);
  ASSERT_EQ(p.coefficients.size(), 3u);
  EXPECT_NEAR(p.coefficients[0], 4.0, 1e-9);
  EXPECT_NEAR(p.coefficients[1], -3.0, 1e-9);
  EXPECT_NEAR(p.coefficients[2], 0.5, 1e-9);
  EXPECT_NEAR(fit_rmse(p, xs, ys), 0.0, 1e-9);
}

TEST(Polyfit, NoisyDataRecoversCoefficients) {
  util::Rng rng(17);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    ys.push_back(2.0 + 1.5 * x - 0.8 * x * x + rng.normal(0.0, 0.05));
  }
  const Polynomial p = polyfit(xs, ys, 2);
  EXPECT_NEAR(p.coefficients[0], 2.0, 0.05);
  EXPECT_NEAR(p.coefficients[1], 1.5, 0.05);
  EXPECT_NEAR(p.coefficients[2], -0.8, 0.02);
}

TEST(Polyfit, DegreeZeroIsMean) {
  const Polynomial p = polyfit({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, 0);
  ASSERT_EQ(p.coefficients.size(), 1u);
  EXPECT_NEAR(p.coefficients[0], 4.0, 1e-12);
}

TEST(Polyfit, RejectsBadInput) {
  EXPECT_THROW((void)polyfit({1.0}, {1.0, 2.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)polyfit({1.0, 2.0}, {1.0, 2.0}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)polyfit({1.0, 2.0}, {1.0, 2.0}, -1),
               std::invalid_argument);
}

TEST(FitRmse, MeasuresResiduals) {
  const Polynomial p{{0.0, 1.0}};  // y = x
  EXPECT_NEAR(fit_rmse(p, {0.0, 1.0}, {1.0, 2.0}), 1.0, 1e-12);
}

}  // namespace
}  // namespace eotora::math
