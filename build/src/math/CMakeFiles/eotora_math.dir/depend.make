# Empty dependencies file for eotora_math.
# This may be replaced when dependencies are built.
