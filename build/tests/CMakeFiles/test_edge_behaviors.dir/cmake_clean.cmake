file(REMOVE_RECURSE
  "CMakeFiles/test_edge_behaviors.dir/test_edge_behaviors.cpp.o"
  "CMakeFiles/test_edge_behaviors.dir/test_edge_behaviors.cpp.o.d"
  "test_edge_behaviors"
  "test_edge_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
