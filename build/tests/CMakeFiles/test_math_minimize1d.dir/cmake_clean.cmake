file(REMOVE_RECURSE
  "CMakeFiles/test_math_minimize1d.dir/test_math_minimize1d.cpp.o"
  "CMakeFiles/test_math_minimize1d.dir/test_math_minimize1d.cpp.o.d"
  "test_math_minimize1d"
  "test_math_minimize1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_minimize1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
