# Empty dependencies file for test_bdma.
# This may be replaced when dependencies are built.
